//! The study pipeline: build the Internet, generate 4.5 years of
//! attacks, run every observatory, and expose the paper's two data
//! projections (weekly attack counts and daily target tuples).
//!
//! Execution is an explicit three-stage dataflow — `plan` → `attacks`
//! → per-observatory `observations` — with every stage output owned by
//! `Arc` and memoized across runs in the content-addressed
//! [`StageCache`](crate::stagecache::StageCache) (DESIGN.md §7). A
//! sweep that only moves an observation-side knob re-observes without
//! rebuilding the plan or regenerating attacks; a `gen` sweep reuses
//! the plan at every grid point.

use crate::scenario::StudyConfig;
use crate::stagecache::{self, StageCache, StageFingerprints};
use analytics::{TargetTuple, WeeklySeries};
use attackgen::{AttackColumns, AttackGenerator, AttackRef, ObservationColumns};
use flowmon::{
    split_by_class_columns, Akamai, AlertColumns, IxpBlackholing, IxpDetection, Netscout,
};
use honeypot::{reconstruct_carpet_columns, Honeypot};
use netmodel::InternetPlan;
use obs::metrics::Counter;
use serde::{Deserialize, Serialize};
use simcore::{Date, ExecPool, SimRng};
use std::sync::{Arc, OnceLock};
use telescope::Telescope;

/// The ten observatory series of Fig. 4, plus NewKid (Appendix D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObsId {
    Orion,
    Ucsd,
    NetscoutDp,
    AkamaiDp,
    IxpDp,
    Hopscotch,
    AmpPot,
    NetscoutRa,
    AkamaiRa,
    IxpRa,
    NewKid,
}

impl ObsId {
    /// The ten main series, direct-path block first (Fig. 4 ordering).
    pub const MAIN_TEN: [ObsId; 10] = [
        ObsId::Orion,
        ObsId::Ucsd,
        ObsId::NetscoutDp,
        ObsId::AkamaiDp,
        ObsId::IxpDp,
        ObsId::Hopscotch,
        ObsId::AmpPot,
        ObsId::NetscoutRa,
        ObsId::AkamaiRa,
        ObsId::IxpRa,
    ];

    /// The four academic observatories of the §7 target analysis.
    pub const ACADEMIC: [ObsId; 4] = [ObsId::Orion, ObsId::Ucsd, ObsId::Hopscotch, ObsId::AmpPot];

    /// Every series the pipeline maintains: the main ten plus NewKid.
    pub const ALL: [ObsId; 11] = [
        ObsId::Orion,
        ObsId::Ucsd,
        ObsId::NetscoutDp,
        ObsId::AkamaiDp,
        ObsId::IxpDp,
        ObsId::Hopscotch,
        ObsId::AmpPot,
        ObsId::NetscoutRa,
        ObsId::AkamaiRa,
        ObsId::IxpRa,
        ObsId::NewKid,
    ];

    pub const fn name(self) -> &'static str {
        match self {
            ObsId::Orion => "ORION",
            ObsId::Ucsd => "UCSD",
            ObsId::NetscoutDp => "Netscout (DP)",
            ObsId::AkamaiDp => "Akamai (DP)",
            ObsId::IxpDp => "IXP (DP)",
            ObsId::Hopscotch => "Hopscotch",
            ObsId::AmpPot => "AmpPot",
            ObsId::NetscoutRa => "Netscout (RA)",
            ObsId::AkamaiRa => "Akamai (RA)",
            ObsId::IxpRa => "IXP (RA)",
            ObsId::NewKid => "NewKid",
        }
    }

    /// Machine-friendly identifier (metric names, CSV columns).
    pub const fn slug(self) -> &'static str {
        match self {
            ObsId::Orion => "orion",
            ObsId::Ucsd => "ucsd",
            ObsId::NetscoutDp => "netscout_dp",
            ObsId::AkamaiDp => "akamai_dp",
            ObsId::IxpDp => "ixp_dp",
            ObsId::Hopscotch => "hopscotch",
            ObsId::AmpPot => "amppot",
            ObsId::NetscoutRa => "netscout_ra",
            ObsId::AkamaiRa => "akamai_ra",
            ObsId::IxpRa => "ixp_ra",
            ObsId::NewKid => "newkid",
        }
    }

    /// Does this series observe direct-path attacks (vs RA)?
    pub const fn is_direct_path(self) -> bool {
        matches!(
            self,
            ObsId::Orion | ObsId::Ucsd | ObsId::NetscoutDp | ObsId::AkamaiDp | ObsId::IxpDp
        )
    }

    pub(crate) const fn index(self) -> usize {
        match self {
            ObsId::Orion => 0,
            ObsId::Ucsd => 1,
            ObsId::NetscoutDp => 2,
            ObsId::AkamaiDp => 3,
            ObsId::IxpDp => 4,
            ObsId::Hopscotch => 5,
            ObsId::AmpPot => 6,
            ObsId::NetscoutRa => 7,
            ObsId::AkamaiRa => 8,
            ObsId::IxpRa => 9,
            ObsId::NewKid => 10,
        }
    }
}

/// Counts of projection computations performed so far (NOT lookups:
/// a memoized hit leaves these untouched). Exposed for the cache-hit
/// regression tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProjectionStats {
    pub weekly_computed: usize,
    pub normalized_computed: usize,
    pub tuples_computed: usize,
    pub baseline_computed: usize,
    pub akamai_computed: usize,
}

/// The counters of one projection kind: a per-run compute count
/// (backs [`StudyRun::projection_stats`], resets with each run) plus
/// the process-cumulative registry handles.
///
/// The registry handles are resolved once, here, so a memoized hit
/// costs a single relaxed atomic increment — not a `format!`
/// allocation plus a registry map probe per lookup, which dominated
/// the old `memo()` hot path.
struct KindCounters {
    run_computed: Counter,
    hit: Arc<Counter>,
    computed: Arc<Counter>,
}

impl KindCounters {
    fn new(kind: &str) -> KindCounters {
        KindCounters {
            run_computed: Counter::new(),
            hit: obs::metrics::counter(&format!("project.{kind}.hit")),
            computed: obs::metrics::counter(&format!("project.{kind}.computed")),
        }
    }
}

/// Lazily-computed per-observatory projections. Every slot is a
/// `OnceLock`, so concurrent readers (sweep threads, experiment
/// renderers) each compute a projection at most once per run.
///
/// Registering the [`KindCounters`] up front also guarantees every run
/// manifest carries the full `project.<kind>.{hit,computed}` picture,
/// zeros included.
struct ProjectionCache {
    weekly: [OnceLock<WeeklySeries>; 11],
    normalized: [OnceLock<WeeklySeries>; 11],
    tuples: [OnceLock<Vec<TargetTuple>>; 11],
    baseline: OnceLock<Vec<TargetTuple>>,
    akamai: OnceLock<Vec<TargetTuple>>,
    weekly_counters: KindCounters,
    normalized_counters: KindCounters,
    tuples_counters: KindCounters,
    baseline_counters: KindCounters,
    akamai_counters: KindCounters,
}

impl ProjectionCache {
    fn new() -> Self {
        ProjectionCache {
            weekly: std::array::from_fn(|_| OnceLock::new()),
            normalized: std::array::from_fn(|_| OnceLock::new()),
            tuples: std::array::from_fn(|_| OnceLock::new()),
            baseline: OnceLock::new(),
            akamai: OnceLock::new(),
            weekly_counters: KindCounters::new("weekly"),
            normalized_counters: KindCounters::new("normalized"),
            tuples_counters: KindCounters::new("tuples"),
            baseline_counters: KindCounters::new("baseline"),
            akamai_counters: KindCounters::new("akamai"),
        }
    }
}

/// Memoized lookup with cache telemetry: a populated slot counts as a
/// `project.<kind>.hit`, a compute bumps both the per-run counter and
/// the registry's `project.<kind>.computed`.
fn memo<'a, T>(
    slot: &'a OnceLock<T>,
    counters: &KindCounters,
    compute: impl FnOnce() -> T,
) -> &'a T {
    if let Some(v) = slot.get() {
        counters.hit.inc();
        return v;
    }
    slot.get_or_init(|| {
        counters.run_computed.inc();
        counters.computed.inc();
        compute()
    })
}

/// One unit of observatory work: `(which observatory, which attack
/// shard)`. The execute fan-out flattens the cross product of the
/// *sources that need re-observing* onto the pool so a slow
/// observatory cannot serialize the others.
#[derive(Debug, Clone, Copy)]
struct ObsTask {
    observatory: usize,
    shard: usize,
}

/// Heterogeneous per-shard observatory output, already columnar. The
/// flow monitors split their two published series *per shard*; since
/// shards are input-ordered and merged in task order, per-class
/// concatenation reproduces the merge-then-split row order exactly.
enum ShardOut {
    Plain(ObservationColumns),
    Ixp {
        ra: ObservationColumns,
        dp: ObservationColumns,
    },
    Akamai {
        ra: ObservationColumns,
        dp: ObservationColumns,
    },
    Alerts(AlertColumns),
}

/// Record the process peak RSS (`VmHWM`) after a pipeline stage: once
/// under `run.peak_rss.<stage>` for per-stage attribution and once
/// under the overall `run.peak_rss` gauge, both of which land in the
/// JSON manifest and the stderr summary table. A pure side channel —
/// no-op where procfs is unavailable. Public so the CLI can stamp the
/// projection stage (`"project"`), which runs outside `execute_on`.
pub fn record_peak_rss(stage: &str) {
    if let Some(bytes) = obs::peak_rss_bytes() {
        obs::metrics::gauge(&format!("run.peak_rss.{stage}")).set(bytes as f64);
        obs::metrics::gauge("run.peak_rss").set(bytes as f64);
    }
}

/// Monomorphic plain-observer shard: one instantiation per call site,
/// so the per-attack observe call is direct (and inlinable) instead of
/// an opaque `dyn Fn` vtable dispatch in the hottest loop of the
/// fan-out. The observer appends detections straight into a columnar
/// sink — no per-observation `Vec<Ipv4>` ever exists.
fn observe_plain<F: Fn(AttackRef<'_>, &mut ObservationColumns) -> bool>(
    attacks: &AttackColumns,
    lo: usize,
    hi: usize,
    observe: F,
) -> ShardOut {
    let mut out = ObservationColumns::new();
    for i in lo..hi {
        observe(attacks.get(i), &mut out);
    }
    ShardOut::Plain(out)
}

/// A completed study run. The stage outputs (`plan`, `attacks`, the
/// observation streams) are `Arc`-owned: cache hits share one
/// allocation across runs, and the projections layer on top per run.
pub struct StudyRun {
    pub config: StudyConfig,
    /// Stage-1 output: the Internet plan.
    pub plan: Arc<InternetPlan>,
    /// Stage-2 output: the ground-truth attack stream, columnar (one
    /// shared target arena instead of a `Vec<Ipv4>` per attack).
    pub attacks: Arc<AttackColumns>,
    /// Stage-3 outputs: observation streams indexed by [`ObsId::index`].
    observations: Vec<Arc<ObservationColumns>>,
    /// All Netscout alerts (needed for the §7.2 baseline sample).
    pub netscout_alerts: Arc<AlertColumns>,
    /// The Netscout instance of this plan, kept for the baseline
    /// sample (rebuilding it per projection call was the old
    /// `netscout_baseline_tuples` hot spot).
    netscout: Netscout,
    /// The observatory RNG root the run executed with.
    obs_root: SimRng,
    cache: ProjectionCache,
}

impl StudyRun {
    /// Execute the full pipeline. Deterministic in `config.seed`,
    /// regardless of worker count: uses `config.workers` if set, else
    /// the process-wide default pool.
    ///
    /// Panics on an invalid config; callers handling untrusted configs
    /// (CLI, sweeps, fuzzing) should use [`StudyRun::try_execute`].
    pub fn execute(config: &StudyConfig) -> StudyRun {
        Self::try_execute(config).expect("StudyConfig failed validation")
    }

    /// Validate, then execute. The only failure mode is a typed
    /// [`Error::Config`](crate::Error::Config) from
    /// [`StudyConfig::validate`]; a config that passes validation runs
    /// to completion without panicking.
    pub fn try_execute(config: &StudyConfig) -> crate::error::Result<StudyRun> {
        config.validate()?;
        let pool = config.workers.map(ExecPool::new).unwrap_or_default();
        Ok(Self::execute_on(config, &pool))
    }

    /// Validate, then execute on a caller-provided pool.
    pub fn try_execute_on(
        config: &StudyConfig,
        pool: &ExecPool,
    ) -> crate::error::Result<StudyRun> {
        config.validate()?;
        Ok(Self::execute_on(config, pool))
    }

    /// Execute the three-stage dataflow on a caller-provided pool,
    /// against the global [`StageCache`].
    ///
    /// Each stage is looked up by its content fingerprint
    /// ([`StageFingerprints`]) and computed only on a miss, so repeated
    /// runs and sweep grids share the stages whose inputs are
    /// unchanged. Cached and recomputed outputs are byte-identical
    /// because every stage is deterministic in its fingerprinted
    /// inputs: stochastic units fork their RNG from immutable data —
    /// week index for generation, (attack id, observatory name) for
    /// observation — and the pool merges shard results in deterministic
    /// order regardless of worker count. Carpet reconstruction and the
    /// flow-monitor class splits remain ordered post-passes inside the
    /// observation stage.
    ///
    /// Stage spans (`plan`, `generate`, `observe`, `merge`) nest under
    /// whatever span the caller holds and are only opened when the
    /// stage actually computes — a fully warm run emits no stage spans.
    pub fn execute_on(config: &StudyConfig, pool: &ExecPool) -> StudyRun {
        let bound = stagecache::resolve_bound(config);
        let cache = StageCache::global();
        // The disk tier under the memory cache (DESIGN.md §11): probed
        // only after a memory miss, written only after a fresh
        // compute. Loads are integrity-checked; a rejected cell falls
        // back to recompute, so enabling the store never changes an
        // output byte.
        let disk = crate::diskstore::resolve(config);
        let fp = StageFingerprints::of(config);
        let root = SimRng::new(config.seed);

        // Control-plane fault injection: attach the chaos schedule to
        // the pool (so every shard runs under bounded retry) and wrap
        // each stage compute, keyed by its content fingerprint — the
        // injection pattern is a pure function of the schedule and the
        // work's identity, never of worker count or cache state.
        let chaos = config.chaos.as_ref().map(|c| c.schedule());
        let pool = &match chaos {
            Some(cs) => pool.with_chaos(cs),
            None => *pool,
        };

        // Stage 1 — plan (inputs: seed + config.net). Memory tier
        // first, then the disk store, then a fresh build (which
        // populates both tiers).
        let plan = cache
            .get_plan(bound, fp.plan)
            .or_else(|| {
                let loaded = disk.as_ref()?.load_plan(fp.plan)?;
                cache.adopt_plan(bound, fp.plan, Arc::clone(&loaded));
                Some(loaded)
            })
            .unwrap_or_else(|| {
                let mut fresh = false;
                let plan = cache.plan(bound, fp.plan, || {
                    fresh = true;
                    crate::faults::with_chaos(chaos.as_ref(), simcore::chaos::sites::STAGE_PLAN, fp.plan, || {
                        let _s = obs::span!("plan");
                        let mut plan_rng = root.fork_named("plan");
                        Arc::new(InternetPlan::build(&config.net, &mut plan_rng))
                    })
                });
                if fresh {
                    if let Some(d) = &disk {
                        d.store_plan(fp.plan, &plan);
                    }
                }
                plan
            });

        record_peak_rss("plan");

        // Stage 2 — attacks (inputs: plan + config.gen + seed). Same
        // two-tier lookup as the plan.
        let attacks = cache
            .get_attacks(bound, fp.attacks)
            .or_else(|| {
                let loaded = disk.as_ref()?.load_attacks(fp.attacks)?;
                cache.adopt_attacks(bound, fp.attacks, Arc::clone(&loaded));
                Some(loaded)
            })
            .unwrap_or_else(|| {
                let mut fresh = false;
                let attacks = cache.attacks(bound, fp.attacks, || {
                    fresh = true;
                    crate::faults::with_chaos(chaos.as_ref(), simcore::chaos::sites::STAGE_ATTACKS, fp.attacks, || {
                        Arc::new(
                            AttackGenerator::new(&plan, config.gen.clone(), &root)
                                .generate_study_on(pool),
                        )
                    })
                });
                if fresh {
                    if let Some(d) = &disk {
                        d.store_attacks(fp.attacks, &attacks);
                    }
                }
                attacks
            });

        record_peak_rss("attacks");

        let obs_root = root.fork_named("observatories");
        // Always rebuilt (cheap, per-plan): the §7.2 baseline
        // projection samples through the run's own Netscout instance.
        let mut netscout = Netscout::with_defaults(&plan);
        netscout.faults = config.faults.for_source("netscout");

        // Data-plane fault bookkeeping: surface the plan's outage mask
        // in the metrics registry (and therefore every run manifest).
        if !config.faults.is_empty() {
            let masked: u64 = config
                .faults
                .degraded_weeks()
                .iter()
                .map(|(_, weeks)| weeks.len() as u64)
                .sum();
            obs::metrics::counter("fault.degraded_weeks").add(masked);
        }

        // Stage 3 — observations (inputs: plan + attacks + config.obs).
        // Each of the eleven final streams plus the raw Netscout alert
        // stream has its own content key; a source observatory
        // re-observes only if at least one of its output streams
        // missed.
        let mut streams: Vec<Option<Arc<ObservationColumns>>> = ObsId::ALL
            .iter()
            .map(|&id| cache.get_observations(bound, fp.observation(id)))
            .collect();
        let mut alerts = cache.get_alerts(bound, fp.netscout_alerts);

        // Disk tier: fill memory misses from stored cells before
        // deciding which observatories must re-run.
        if let Some(d) = &disk {
            for &id in ObsId::ALL.iter() {
                if streams[id.index()].is_none() {
                    if let Some(v) = d.load_observations(fp.observation(id)) {
                        cache.adopt_observations(bound, fp.observation(id), Arc::clone(&v));
                        streams[id.index()] = Some(v);
                    }
                }
            }
            if alerts.is_none() {
                if let Some(v) = d.load_alerts(fp.netscout_alerts) {
                    cache.adopt_alerts(bound, fp.netscout_alerts, Arc::clone(&v));
                    alerts = Some(v);
                }
            }
        }

        // Source indices of the fan-out; sources 5–7 each produce two
        // final streams (their RA/DP splits), source 7 also the raw
        // alert stream.
        const N_OBSERVATORIES: usize = 8;
        let need = |id: ObsId| streams[id.index()].is_none();
        let needed: [bool; N_OBSERVATORIES] = [
            need(ObsId::Ucsd),
            need(ObsId::Orion),
            need(ObsId::Hopscotch),
            need(ObsId::AmpPot),
            need(ObsId::NewKid),
            need(ObsId::IxpDp) || need(ObsId::IxpRa),
            need(ObsId::AkamaiDp) || need(ObsId::AkamaiRa),
            need(ObsId::NetscoutDp) || need(ObsId::NetscoutRa) || alerts.is_none(),
        ];

        if needed.iter().any(|&n| n) {
            let observe_span = obs::span!("observe");
            // Each observatory consults its slice of the fault plan
            // while observing (empty slices are bit-for-bit inert).
            let faults_for = |source: &str| config.faults.for_source(source);
            let mut ucsd = Telescope::ucsd(&plan);
            ucsd.faults = faults_for("ucsd");
            let mut orion = Telescope::orion(&plan);
            orion.faults = faults_for("orion");
            let mut hopscotch = Honeypot::hopscotch(&plan);
            hopscotch.faults = faults_for("hopscotch");
            let mut amppot = Honeypot::amppot(&plan);
            amppot.faults = faults_for("amppot");
            let mut newkid = Honeypot::newkid(&plan);
            newkid.faults = faults_for("newkid");
            let mut ixp = IxpBlackholing::with_defaults(&plan);
            ixp.faults = faults_for("ixp");
            let mut akamai = Akamai::with_defaults(&plan);
            akamai.faults = faults_for("akamai");

            // Flatten (needed source × attack-shard) onto the pool.
            // Tasks are ordered source-major / shard-minor and the pool
            // returns results in task order, so per-source
            // concatenation below reproduces each serial `observe_all`
            // exactly.
            let chunk = simcore::pool::shard_size(attacks.len(), pool.workers());
            let n_shards = attacks.len().div_ceil(chunk).max(1);
            let tasks: Vec<ObsTask> = (0..N_OBSERVATORIES)
                .filter(|&source| needed[source])
                .flat_map(|observatory| {
                    (0..n_shards).map(move |shard| ObsTask { observatory, shard })
                })
                .collect();
            let shard_ns =
                obs::metrics::histogram("observe.shard_ns", &obs::metrics::LATENCY_NS);

            // Per-source accumulators the ordered fold below appends
            // into. Tasks are source-major / shard-minor and the fold
            // consumes results in task order, so each source's stream
            // is the concatenation of its shards in attack order —
            // exactly a serial `observe_all` — while every shard's
            // buffers free as soon as they are spliced in.
            let mut plain_streams: Vec<ObservationColumns> =
                (0..5).map(|_| ObservationColumns::new()).collect();
            let mut ixp_ra = ObservationColumns::new();
            let mut ixp_dp = ObservationColumns::new();
            let mut akamai_ra = ObservationColumns::new();
            let mut akamai_dp = ObservationColumns::new();
            let mut alerts_raw = AlertColumns::new();
            pool.par_chunks_fold(&tasks, 1, |_, task| {
                let watch = obs::Stopwatch::start();
                let ObsTask { observatory, shard } = task[0];
                let lo = shard * chunk;
                let hi = (lo + chunk).min(attacks.len());
                let out = match observatory {
                    0 => observe_plain(&attacks, lo, hi, |a, out| {
                        ucsd.observe_into(a, &obs_root, out)
                    }),
                    1 => observe_plain(&attacks, lo, hi, |a, out| {
                        orion.observe_into(a, &obs_root, out)
                    }),
                    2 => observe_plain(&attacks, lo, hi, |a, out| {
                        hopscotch.observe_into(a, &obs_root, out)
                    }),
                    3 => observe_plain(&attacks, lo, hi, |a, out| {
                        amppot.observe_into(a, &obs_root, out)
                    }),
                    4 => observe_plain(&attacks, lo, hi, |a, out| {
                        newkid.observe_into(a, &obs_root, out)
                    }),
                    5 => {
                        let mut ra = ObservationColumns::new();
                        let mut dp = ObservationColumns::new();
                        for i in lo..hi {
                            let a = attacks.get(i);
                            match ixp.observe_view(a, &obs_root) {
                                Some(IxpDetection::ReflectionAmplification) => {
                                    ra.push_row(a.id, a.start, a.targets)
                                }
                                Some(IxpDetection::DirectPath) => {
                                    dp.push_row(a.id, a.start, a.targets)
                                }
                                None => {}
                            }
                        }
                        ShardOut::Ixp { ra, dp }
                    }
                    6 => {
                        let mut ra = ObservationColumns::new();
                        let mut dp = ObservationColumns::new();
                        for i in lo..hi {
                            let a = attacks.get(i);
                            // The alert class is the attack class, so the
                            // RA/DP routing is known before observing.
                            let out = if a.class.is_reflection() { &mut ra } else { &mut dp };
                            akamai.observe_into(a, &obs_root, out);
                        }
                        ShardOut::Akamai { ra, dp }
                    }
                    _ => {
                        let mut out = AlertColumns::new();
                        for i in lo..hi {
                            let a = attacks.get(i);
                            if let Some((class, severity)) = netscout.observe_view(a, &obs_root)
                            {
                                out.push(a, class, severity);
                            }
                        }
                        ShardOut::Alerts(out)
                    }
                };
                if obs::enabled() {
                    shard_ns.record(watch.elapsed_ns());
                }
                out
            }, (), |(), idx, out| match out {
                ShardOut::Plain(v) => plain_streams[tasks[idx].observatory].append(v),
                ShardOut::Ixp { ra, dp } => {
                    ixp_ra.append(ra);
                    ixp_dp.append(dp);
                }
                ShardOut::Akamai { ra, dp } => {
                    akamai_ra.append(ra);
                    akamai_dp.append(dp);
                }
                ShardOut::Alerts(v) => alerts_raw.append(v),
            });
            drop(observe_span);
            let _merge_span = obs::span!("merge");
            let [ucsd_raw, orion_raw, hopscotch_raw, amppot_raw, newkid_raw]: [ObservationColumns;
                5] = plain_streams.try_into().expect("five plain streams");

            // Ordered post-passes: CCC / Appendix-I carpet
            // reconstruction merges concurrent same-prefix honeypot
            // events; the Netscout alert stream splits into its
            // published (RA, DP) series. A source that did not run
            // contributes empty columns here and its `store` below is a
            // no-op (its streams are already resolved from cache).
            let gap = i64::from(config.obs.carpet_gap_secs);
            let hopscotch_obs = reconstruct_carpet_columns(&plan, &hopscotch_raw, gap);
            let amppot_obs = reconstruct_carpet_columns(&plan, &amppot_raw, gap);
            let newkid_obs = reconstruct_carpet_columns(&plan, &newkid_raw, gap);

            let (netscout_ra, netscout_dp) = split_by_class_columns(&alerts_raw);

            // Publish every freshly observed stream: into the stage
            // cache for the next run, into `streams` for this one.
            // Already-resolved slots keep their cached Arc (a source
            // can re-run because its *sibling* stream missed).
            let mut store = |id: ObsId, mut v: ObservationColumns| {
                if streams[id.index()].is_none() {
                    v.shrink_to_fit();
                    let arc = Arc::new(v);
                    cache.insert_observations(bound, fp.observation(id), Arc::clone(&arc));
                    if let Some(d) = &disk {
                        d.store_observations(fp.observation(id), &arc);
                    }
                    streams[id.index()] = Some(arc);
                }
            };
            store(ObsId::Ucsd, ucsd_raw);
            store(ObsId::Orion, orion_raw);
            store(ObsId::Hopscotch, hopscotch_obs);
            store(ObsId::AmpPot, amppot_obs);
            store(ObsId::NewKid, newkid_obs);
            store(ObsId::IxpDp, ixp_dp);
            store(ObsId::IxpRa, ixp_ra);
            store(ObsId::AkamaiDp, akamai_dp);
            store(ObsId::AkamaiRa, akamai_ra);
            store(ObsId::NetscoutDp, netscout_dp);
            store(ObsId::NetscoutRa, netscout_ra);
            if alerts.is_none() {
                alerts_raw.shrink_to_fit();
                let arc = Arc::new(alerts_raw);
                cache.insert_alerts(bound, fp.netscout_alerts, Arc::clone(&arc));
                if let Some(d) = &disk {
                    d.store_alerts(fp.netscout_alerts, &arc);
                }
                alerts = Some(arc);
            }
        }

        record_peak_rss("observe");

        let observations: Vec<Arc<ObservationColumns>> = streams
            .into_iter()
            .map(|s| s.expect("every observation stream resolved"))
            .collect();
        let netscout_alerts = alerts.expect("netscout alert stream resolved");

        // Per-observatory kept-observation counts: together with
        // `gen.attacks` these answer "what did each stage actually do"
        // in any run's manifest. Counted per run whether the stream was
        // observed or served from cache.
        for id in ObsId::ALL {
            obs::metrics::counter(&format!("observe.count.{}", id.slug()))
                .add(observations[id.index()].len() as u64);
        }

        StudyRun {
            config: config.clone(),
            plan,
            attacks,
            observations,
            netscout_alerts,
            netscout,
            obs_root,
            cache: ProjectionCache::new(),
        }
    }

    /// Observations of one observatory, columnar.
    pub fn observations(&self, id: ObsId) -> &ObservationColumns {
        &self.observations[id.index()]
    }

    /// Raw weekly attack counts (§5 aggregation), with the paper's
    /// missing-data gaps masked when configured. Memoized per series.
    pub fn weekly_series(&self, id: ObsId) -> &WeeklySeries {
        memo(&self.cache.weekly[id.index()], &self.cache.weekly_counters, || {
            let mut s = WeeklySeries::new(id.name(), self.observations(id).weekly_counts());
            if self.config.missing_data {
                match id {
                    ObsId::Orion => {
                        // ORION missing 2019Q3–Q4 (§6.1).
                        let lo = Date::new(2019, 7, 1).to_sim_time().week_index() as usize;
                        let hi = Date::new(2020, 1, 1).to_sim_time().week_index() as usize;
                        s.mask_range(lo, hi);
                    }
                    ObsId::IxpDp | ObsId::IxpRa => {
                        // IXP missing January 2019.
                        let hi = Date::new(2019, 2, 1).to_sim_time().week_index() as usize;
                        s.mask_range(0, hi);
                    }
                    _ => {}
                }
            }
            // Fault-plan outage windows are *missing data*, not zero
            // counts: mask them so normalization, EWMA, regression and
            // correlations skip the gap instead of being poisoned by
            // artificial zeros.
            for (lo, hi) in self.config.faults.outage_ranges(id) {
                s.mask_range(lo, hi);
            }
            s
        })
    }

    /// Normalized weekly series (median of the first 15 present weeks).
    /// Memoized per series.
    pub fn normalized_series(&self, id: ObsId) -> &WeeklySeries {
        memo(
            &self.cache.normalized[id.index()],
            &self.cache.normalized_counters,
            || self.weekly_series(id).normalize_to_baseline(),
        )
    }

    /// All ten main series, normalized, in Fig.-4 order.
    pub fn all_ten_normalized(&self) -> Vec<WeeklySeries> {
        ObsId::MAIN_TEN
            .iter()
            .map(|&id| self.normalized_series(id).clone())
            .collect()
    }

    /// Distinct (day, target IP) tuples of one observatory (§7).
    /// Memoized per series.
    pub fn target_tuples(&self, id: ObsId) -> &[TargetTuple] {
        let v: &Vec<TargetTuple> =
            memo(&self.cache.tuples[id.index()], &self.cache.tuples_counters, || {
                self.observations(id).distinct_target_tuples()
            });
        v
    }

    /// Target tuples of the Netscout §7.2 baseline sample (~28 % of
    /// alerts). Memoized; reuses the run's own `Netscout` instance and
    /// observatory RNG root, and borrows the sampled observations
    /// instead of cloning them.
    pub fn netscout_baseline_tuples(&self) -> &[TargetTuple] {
        let v: &Vec<TargetTuple> =
            memo(&self.cache.baseline, &self.cache.baseline_counters, || {
                let alerts = &self.netscout_alerts;
                let mut tuples: Vec<TargetTuple> = Vec::new();
                for i in 0..alerts.len() {
                    let row = alerts.obs.get(i);
                    if self.netscout.baseline_keep(row.attack_id.0, &self.obs_root) {
                        tuples.extend(row.target_tuples());
                    }
                }
                tuples.sort_unstable();
                tuples.dedup();
                tuples
            });
        v
    }

    /// Counts of projection computations so far (cache instrumentation).
    pub fn projection_stats(&self) -> ProjectionStats {
        ProjectionStats {
            weekly_computed: self.cache.weekly_counters.run_computed.get() as usize,
            normalized_computed: self.cache.normalized_counters.run_computed.get() as usize,
            tuples_computed: self.cache.tuples_counters.run_computed.get() as usize,
            baseline_computed: self.cache.baseline_counters.run_computed.get() as usize,
            akamai_computed: self.cache.akamai_counters.run_computed.get() as usize,
        }
    }

    /// Target tuples of the Akamai §7.2 join: both classes, restricted
    /// to "targets in the network prefix of Akamai" — the narrow set of
    /// prefixes advertised from the Prolexic ASN, not the full
    /// protected customer base (which is why the paper's Akamai joins
    /// are ≈100× smaller than Netscout's). Memoized: the sort/dedup
    /// runs once per run, repeat calls borrow.
    pub fn akamai_tuples(&self) -> &[TargetTuple] {
        let v: &Vec<TargetTuple> =
            memo(&self.cache.akamai, &self.cache.akamai_counters, || {
                let mut all = self.target_tuples(ObsId::AkamaiRa).to_vec();
                all.extend_from_slice(self.target_tuples(ObsId::AkamaiDp));
                all.retain(|&(_, ip)| self.plan.akamai_announces(ip));
                all.sort_unstable();
                all.dedup();
                all
            });
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One shared quick run for all pipeline tests.
    pub(crate) fn quick_run() -> &'static StudyRun {
        static RUN: OnceLock<StudyRun> = OnceLock::new();
        RUN.get_or_init(|| StudyRun::execute(&StudyConfig::quick()))
    }

    #[test]
    fn run_is_deterministic() {
        let a = StudyRun::execute(&StudyConfig::quick());
        let b = quick_run();
        assert_eq!(a.attacks.len(), b.attacks.len());
        for id in ObsId::MAIN_TEN {
            assert_eq!(
                a.observations(id).len(),
                b.observations(id).len(),
                "{} diverged",
                id.name()
            );
        }
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn peak_rss_gauges_recorded() {
        let _ = quick_run();
        assert!(obs::metrics::gauge("run.peak_rss").get() > 0.0);
        for stage in ["plan", "attacks", "observe"] {
            let g = obs::metrics::gauge(&format!("run.peak_rss.{stage}"));
            assert!(g.get() > 0.0, "run.peak_rss.{stage} not recorded");
        }
    }

    #[test]
    fn every_observatory_sees_something() {
        let run = quick_run();
        for id in ObsId::MAIN_TEN {
            assert!(
                !run.observations(id).is_empty(),
                "{} saw nothing",
                id.name()
            );
        }
        assert!(!run.observations(ObsId::NewKid).is_empty());
    }

    #[test]
    fn telescopes_only_see_spoofed_dp() {
        let run = quick_run();
        use std::collections::HashMap;
        let by_id: HashMap<u64, attackgen::AttackClass> =
            run.attacks.iter().map(|a| (a.id.0, a.class)).collect();
        for id in [ObsId::Ucsd, ObsId::Orion] {
            for o in run.observations(id).iter() {
                assert_eq!(
                    by_id[&o.attack_id.0],
                    attackgen::AttackClass::DirectPathSpoofed
                );
            }
        }
    }

    #[test]
    fn honeypots_only_see_ra() {
        let run = quick_run();
        use std::collections::HashMap;
        let by_id: HashMap<u64, attackgen::AttackClass> =
            run.attacks.iter().map(|a| (a.id.0, a.class)).collect();
        for id in [ObsId::Hopscotch, ObsId::AmpPot] {
            for o in run.observations(id).iter() {
                // Reconstructed events keep the id of their first
                // member; synthetic ids (u64::MAX range) never appear in
                // the event-level path.
                assert!(
                    by_id[&o.attack_id.0].is_reflection(),
                    "{} saw a DP attack",
                    id.name()
                );
            }
        }
    }

    #[test]
    fn ucsd_sees_more_than_orion() {
        let run = quick_run();
        let ucsd = run.observations(ObsId::Ucsd).len();
        let orion = run.observations(ObsId::Orion).len();
        assert!(
            ucsd > 2 * orion,
            "UCSD {ucsd} should dwarf ORION {orion} (24× size)"
        );
    }

    #[test]
    fn weekly_series_lengths() {
        let run = quick_run();
        for id in ObsId::MAIN_TEN {
            assert_eq!(run.weekly_series(id).len(), simcore::STUDY_WEEKS);
        }
    }

    #[test]
    fn missing_data_masks_applied() {
        let run = quick_run();
        let orion = run.weekly_series(ObsId::Orion);
        let w = Date::new(2019, 9, 1).to_sim_time().week_index() as usize;
        assert!(orion.values[w].is_nan(), "ORION 2019Q3 should be masked");
        let ixp = run.weekly_series(ObsId::IxpDp);
        assert!(ixp.values[1].is_nan(), "IXP January 2019 should be masked");
        // UCSD has no gaps.
        assert!(run.weekly_series(ObsId::Ucsd).values[w].is_finite());
    }

    #[test]
    fn normalized_series_baseline_near_one() {
        let run = quick_run();
        let s = run.normalized_series(ObsId::Ucsd);
        let early: Vec<f64> = s.present().take(15).map(|(_, v)| v).collect();
        let m = analytics::median(&early);
        assert!((m - 1.0).abs() < 0.2, "baseline median {m}");
    }

    #[test]
    fn netscout_baseline_is_subset() {
        let run = quick_run();
        let baseline = run.netscout_baseline_tuples();
        let mut full = run.target_tuples(ObsId::NetscoutRa).to_vec();
        full.extend_from_slice(run.target_tuples(ObsId::NetscoutDp));
        let full: std::collections::HashSet<_> = full.into_iter().collect();
        assert!(!baseline.is_empty());
        assert!(baseline.len() < full.len());
        assert!(baseline.iter().all(|t| full.contains(t)));
    }

    #[test]
    fn target_tuples_deduplicated() {
        let run = quick_run();
        let tuples = run.target_tuples(ObsId::Hopscotch);
        let set: std::collections::HashSet<_> = tuples.iter().collect();
        assert_eq!(set.len(), tuples.len());
    }

    #[test]
    fn akamai_tuples_memoized() {
        let run = StudyRun::execute(&StudyConfig::quick());
        assert_eq!(run.projection_stats().akamai_computed, 0);
        let first = run.akamai_tuples();
        assert_eq!(run.projection_stats().akamai_computed, 1);
        let second = run.akamai_tuples();
        // Still one compute, and the repeat call borrows the same data.
        assert_eq!(run.projection_stats().akamai_computed, 1);
        assert!(std::ptr::eq(first.as_ptr(), second.as_ptr()));
        assert_eq!(first, second);
    }
}
