//! The study pipeline: build the Internet, generate 4.5 years of
//! attacks, run every observatory, and expose the paper's two data
//! projections (weekly attack counts and daily target tuples).

use crate::scenario::StudyConfig;
use analytics::{TargetTuple, WeeklySeries};
use attackgen::{
    distinct_target_tuples, distinct_target_tuples_of, weekly_counts, Attack, AttackClass,
    AttackGenerator, ObservedAttack,
};
use flowmon::{split_by_class, Akamai, IxpBlackholing, IxpDetection, Netscout, NetscoutAlert};
use honeypot::{reconstruct_carpet_attacks, Honeypot};
use netmodel::InternetPlan;
use obs::metrics::Counter;
use serde::{Deserialize, Serialize};
use simcore::{Date, ExecPool, SimRng};
use std::sync::OnceLock;
use telescope::Telescope;

/// The ten observatory series of Fig. 4, plus NewKid (Appendix D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObsId {
    Orion,
    Ucsd,
    NetscoutDp,
    AkamaiDp,
    IxpDp,
    Hopscotch,
    AmpPot,
    NetscoutRa,
    AkamaiRa,
    IxpRa,
    NewKid,
}

impl ObsId {
    /// The ten main series, direct-path block first (Fig. 4 ordering).
    pub const MAIN_TEN: [ObsId; 10] = [
        ObsId::Orion,
        ObsId::Ucsd,
        ObsId::NetscoutDp,
        ObsId::AkamaiDp,
        ObsId::IxpDp,
        ObsId::Hopscotch,
        ObsId::AmpPot,
        ObsId::NetscoutRa,
        ObsId::AkamaiRa,
        ObsId::IxpRa,
    ];

    /// The four academic observatories of the §7 target analysis.
    pub const ACADEMIC: [ObsId; 4] = [ObsId::Orion, ObsId::Ucsd, ObsId::Hopscotch, ObsId::AmpPot];

    /// Every series the pipeline maintains: the main ten plus NewKid.
    pub const ALL: [ObsId; 11] = [
        ObsId::Orion,
        ObsId::Ucsd,
        ObsId::NetscoutDp,
        ObsId::AkamaiDp,
        ObsId::IxpDp,
        ObsId::Hopscotch,
        ObsId::AmpPot,
        ObsId::NetscoutRa,
        ObsId::AkamaiRa,
        ObsId::IxpRa,
        ObsId::NewKid,
    ];

    pub const fn name(self) -> &'static str {
        match self {
            ObsId::Orion => "ORION",
            ObsId::Ucsd => "UCSD",
            ObsId::NetscoutDp => "Netscout (DP)",
            ObsId::AkamaiDp => "Akamai (DP)",
            ObsId::IxpDp => "IXP (DP)",
            ObsId::Hopscotch => "Hopscotch",
            ObsId::AmpPot => "AmpPot",
            ObsId::NetscoutRa => "Netscout (RA)",
            ObsId::AkamaiRa => "Akamai (RA)",
            ObsId::IxpRa => "IXP (RA)",
            ObsId::NewKid => "NewKid",
        }
    }

    /// Machine-friendly identifier (metric names, CSV columns).
    pub const fn slug(self) -> &'static str {
        match self {
            ObsId::Orion => "orion",
            ObsId::Ucsd => "ucsd",
            ObsId::NetscoutDp => "netscout_dp",
            ObsId::AkamaiDp => "akamai_dp",
            ObsId::IxpDp => "ixp_dp",
            ObsId::Hopscotch => "hopscotch",
            ObsId::AmpPot => "amppot",
            ObsId::NetscoutRa => "netscout_ra",
            ObsId::AkamaiRa => "akamai_ra",
            ObsId::IxpRa => "ixp_ra",
            ObsId::NewKid => "newkid",
        }
    }

    /// Does this series observe direct-path attacks (vs RA)?
    pub const fn is_direct_path(self) -> bool {
        matches!(
            self,
            ObsId::Orion | ObsId::Ucsd | ObsId::NetscoutDp | ObsId::AkamaiDp | ObsId::IxpDp
        )
    }

    fn index(self) -> usize {
        match self {
            ObsId::Orion => 0,
            ObsId::Ucsd => 1,
            ObsId::NetscoutDp => 2,
            ObsId::AkamaiDp => 3,
            ObsId::IxpDp => 4,
            ObsId::Hopscotch => 5,
            ObsId::AmpPot => 6,
            ObsId::NetscoutRa => 7,
            ObsId::AkamaiRa => 8,
            ObsId::IxpRa => 9,
            ObsId::NewKid => 10,
        }
    }
}

/// Counts of projection computations performed so far (NOT lookups:
/// a memoized hit leaves these untouched). Exposed for the cache-hit
/// regression tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProjectionStats {
    pub weekly_computed: usize,
    pub normalized_computed: usize,
    pub tuples_computed: usize,
    pub baseline_computed: usize,
}

/// Lazily-computed per-observatory projections. Every slot is a
/// `OnceLock`, so concurrent readers (sweep threads, experiment
/// renderers) each compute a projection at most once per run.
///
/// Cache instrumentation uses the `obs` counter primitive throughout:
/// the per-run counters below back [`StudyRun::projection_stats`], and
/// every compute/hit is mirrored into the global registry under
/// `project.<kind>.computed` / `project.<kind>.hit` so run manifests
/// carry the cache behaviour (registry counters are process-cumulative,
/// per-run counters reset with each `StudyRun`).
struct ProjectionCache {
    weekly: [OnceLock<WeeklySeries>; 11],
    normalized: [OnceLock<WeeklySeries>; 11],
    tuples: [OnceLock<Vec<TargetTuple>>; 11],
    baseline: OnceLock<Vec<TargetTuple>>,
    weekly_computed: Counter,
    normalized_computed: Counter,
    tuples_computed: Counter,
    baseline_computed: Counter,
}

impl ProjectionCache {
    fn new() -> Self {
        // Register the registry-side instruments up front so every run
        // manifest carries the full hit/miss picture, zeros included.
        for kind in ["weekly", "normalized", "tuples", "baseline"] {
            obs::metrics::counter(&format!("project.{kind}.hit"));
            obs::metrics::counter(&format!("project.{kind}.computed"));
        }
        ProjectionCache {
            weekly: std::array::from_fn(|_| OnceLock::new()),
            normalized: std::array::from_fn(|_| OnceLock::new()),
            tuples: std::array::from_fn(|_| OnceLock::new()),
            baseline: OnceLock::new(),
            weekly_computed: Counter::new(),
            normalized_computed: Counter::new(),
            tuples_computed: Counter::new(),
            baseline_computed: Counter::new(),
        }
    }
}

/// Memoized lookup with cache telemetry: a populated slot counts as a
/// `project.<kind>.hit`, a compute bumps both the per-run counter and
/// the registry's `project.<kind>.computed`.
fn memo<'a, T>(
    slot: &'a OnceLock<T>,
    run_counter: &Counter,
    kind: &str,
    compute: impl FnOnce() -> T,
) -> &'a T {
    if let Some(v) = slot.get() {
        obs::metrics::counter(&format!("project.{kind}.hit")).inc();
        return v;
    }
    slot.get_or_init(|| {
        run_counter.inc();
        obs::metrics::counter(&format!("project.{kind}.computed")).inc();
        compute()
    })
}

/// One unit of observatory work: `(which observatory, which attack
/// shard)`. The execute fan-out flattens the full cross product onto
/// the pool so a slow observatory cannot serialize the others.
#[derive(Debug, Clone, Copy)]
struct ObsTask {
    observatory: usize,
    shard: usize,
}

/// Heterogeneous per-shard observatory output.
enum ShardOut {
    Plain(Vec<ObservedAttack>),
    IxpTagged(Vec<(IxpDetection, ObservedAttack)>),
    AkamaiTagged(Vec<(AttackClass, ObservedAttack)>),
    Alerts(Vec<NetscoutAlert>),
}

/// A completed study run.
pub struct StudyRun {
    pub config: StudyConfig,
    pub plan: InternetPlan,
    pub attacks: Vec<Attack>,
    /// Observation streams indexed by [`ObsId::index`].
    observations: Vec<Vec<ObservedAttack>>,
    /// All Netscout alerts (needed for the §7.2 baseline sample).
    pub netscout_alerts: Vec<NetscoutAlert>,
    /// The Netscout instance that produced the alerts, kept for the
    /// baseline sample (rebuilding it per projection call was the old
    /// `netscout_baseline_tuples` hot spot).
    netscout: Netscout,
    /// The observatory RNG root the run executed with.
    obs_root: SimRng,
    cache: ProjectionCache,
}

impl StudyRun {
    /// Execute the full pipeline. Deterministic in `config.seed`,
    /// regardless of worker count: uses `config.workers` if set, else
    /// the process-wide default pool.
    ///
    /// Panics on an invalid config; callers handling untrusted configs
    /// (CLI, sweeps, fuzzing) should use [`StudyRun::try_execute`].
    pub fn execute(config: &StudyConfig) -> StudyRun {
        Self::try_execute(config).expect("StudyConfig failed validation")
    }

    /// Validate, then execute. The only failure mode is a typed
    /// [`Error::Config`](crate::Error::Config) from
    /// [`StudyConfig::validate`]; a config that passes validation runs
    /// to completion without panicking.
    pub fn try_execute(config: &StudyConfig) -> crate::error::Result<StudyRun> {
        config.validate()?;
        let pool = config.workers.map(ExecPool::new).unwrap_or_default();
        Ok(Self::execute_on(config, &pool))
    }

    /// Validate, then execute on a caller-provided pool.
    pub fn try_execute_on(
        config: &StudyConfig,
        pool: &ExecPool,
    ) -> crate::error::Result<StudyRun> {
        config.validate()?;
        Ok(Self::execute_on(config, pool))
    }

    /// Execute the full pipeline on a caller-provided pool.
    ///
    /// Attack generation fans out per study week; observation fans out
    /// as the (observatory × attack-shard) cross product. Determinism
    /// is preserved because every stochastic unit forks its RNG from
    /// immutable inputs — week index for generation, (attack id,
    /// observatory name) for observation — and the pool merges shard
    /// results in deterministic order. Carpet reconstruction and the
    /// Netscout class split remain ordered post-passes over already-
    /// merged streams.
    /// Stage spans (`plan`, `generate`, `observe`, `merge`) nest under
    /// whatever span the caller holds — the CLI wraps each command in
    /// `obs::span!("run")`, so manifests report `span.run.generate`
    /// etc.; library callers get top-level stage spans.
    pub fn execute_on(config: &StudyConfig, pool: &ExecPool) -> StudyRun {
        let root = SimRng::new(config.seed);
        let mut plan_rng = root.fork_named("plan");
        let plan = {
            let _s = obs::span!("plan");
            InternetPlan::build(&config.net, &mut plan_rng)
        };
        let attacks =
            AttackGenerator::new(&plan, config.gen.clone(), &root).generate_study_on(pool);
        let obs_root = root.fork_named("observatories");
        let observe_span = obs::span!("observe");

        let ucsd = Telescope::ucsd(&plan);
        let orion = Telescope::orion(&plan);
        let hopscotch = Honeypot::hopscotch(&plan);
        let amppot = Honeypot::amppot(&plan);
        let newkid = Honeypot::newkid(&plan);
        let ixp = IxpBlackholing::with_defaults(&plan);
        let netscout = Netscout::with_defaults(&plan);
        let akamai = Akamai::with_defaults(&plan);

        // Flatten (observatory × attack-shard) onto the pool. Tasks are
        // ordered observatory-major / shard-minor and the pool returns
        // results in task order, so per-observatory concatenation below
        // reproduces each serial `observe_all` exactly.
        const N_OBSERVATORIES: usize = 8;
        let chunk = simcore::pool::shard_size(attacks.len(), pool.workers());
        let n_shards = attacks.chunks(chunk).count().max(1);
        let tasks: Vec<ObsTask> = (0..N_OBSERVATORIES)
            .flat_map(|observatory| {
                (0..n_shards).map(move |shard| ObsTask { observatory, shard })
            })
            .collect();
        let shard_ns = obs::metrics::histogram("observe.shard_ns", &obs::metrics::LATENCY_NS);
        let outputs = pool.par_chunks_indexed(&tasks, 1, |_, task| {
            let watch = obs::Stopwatch::start();
            let ObsTask { observatory, shard } = task[0];
            let lo = shard * chunk;
            let hi = (lo + chunk).min(attacks.len());
            let slice = &attacks[lo..hi];
            let plain = |obs: &dyn Fn(&Attack) -> Option<ObservedAttack>| {
                ShardOut::Plain(slice.iter().filter_map(obs).collect())
            };
            let out = match observatory {
                0 => plain(&|a| ucsd.observe(a, &obs_root)),
                1 => plain(&|a| orion.observe(a, &obs_root)),
                2 => plain(&|a| hopscotch.observe(a, &obs_root)),
                3 => plain(&|a| amppot.observe(a, &obs_root)),
                4 => plain(&|a| newkid.observe(a, &obs_root)),
                5 => ShardOut::IxpTagged(
                    slice.iter().filter_map(|a| ixp.observe(a, &obs_root)).collect(),
                ),
                6 => ShardOut::AkamaiTagged(
                    slice.iter().filter_map(|a| akamai.observe(a, &obs_root)).collect(),
                ),
                _ => ShardOut::Alerts(
                    slice
                        .iter()
                        .filter_map(|a| netscout.observe(a, &obs_root))
                        .collect(),
                ),
            };
            if obs::enabled() {
                shard_ns.record(watch.elapsed_ns());
            }
            out
        });
        drop(observe_span);
        let _merge_span = obs::span!("merge");

        // Merge shard outputs back into one stream per observatory.
        let mut plain_streams: Vec<Vec<ObservedAttack>> = (0..5).map(|_| Vec::new()).collect();
        let mut ixp_tagged: Vec<(IxpDetection, ObservedAttack)> = Vec::new();
        let mut akamai_tagged: Vec<(AttackClass, ObservedAttack)> = Vec::new();
        let mut alerts: Vec<NetscoutAlert> = Vec::new();
        for (task, out) in tasks.iter().zip(outputs) {
            match out {
                ShardOut::Plain(v) => plain_streams[task.observatory].extend(v),
                ShardOut::IxpTagged(v) => ixp_tagged.extend(v),
                ShardOut::AkamaiTagged(v) => akamai_tagged.extend(v),
                ShardOut::Alerts(v) => alerts.extend(v),
            }
        }
        let [ucsd_raw, orion_raw, hopscotch_raw, amppot_raw, newkid_raw]: [Vec<ObservedAttack>;
            5] = plain_streams.try_into().expect("five plain streams");

        // Ordered post-passes: CCC / Appendix-I carpet reconstruction
        // merges concurrent same-prefix honeypot events; the flow
        // monitors split into their published (RA, DP) series.
        let carpet_gap_secs = 3600;
        let hopscotch_obs = reconstruct_carpet_attacks(&plan, &hopscotch_raw, carpet_gap_secs);
        let amppot_obs = reconstruct_carpet_attacks(&plan, &amppot_raw, carpet_gap_secs);
        let newkid_obs = reconstruct_carpet_attacks(&plan, &newkid_raw, carpet_gap_secs);

        let mut ixp_ra = Vec::new();
        let mut ixp_dp = Vec::new();
        for (det, o) in ixp_tagged {
            match det {
                IxpDetection::ReflectionAmplification => ixp_ra.push(o),
                IxpDetection::DirectPath => ixp_dp.push(o),
            }
        }
        let mut akamai_ra = Vec::new();
        let mut akamai_dp = Vec::new();
        for (class, o) in akamai_tagged {
            if class.is_reflection() {
                akamai_ra.push(o);
            } else {
                akamai_dp.push(o);
            }
        }
        let (netscout_ra, netscout_dp) = split_by_class(&alerts);

        let mut observations = vec![Vec::new(); 11];
        observations[ObsId::Orion.index()] = orion_raw;
        observations[ObsId::Ucsd.index()] = ucsd_raw;
        observations[ObsId::NetscoutDp.index()] = netscout_dp;
        observations[ObsId::AkamaiDp.index()] = akamai_dp;
        observations[ObsId::IxpDp.index()] = ixp_dp;
        observations[ObsId::Hopscotch.index()] = hopscotch_obs;
        observations[ObsId::AmpPot.index()] = amppot_obs;
        observations[ObsId::NetscoutRa.index()] = netscout_ra;
        observations[ObsId::AkamaiRa.index()] = akamai_ra;
        observations[ObsId::IxpRa.index()] = ixp_ra;
        observations[ObsId::NewKid.index()] = newkid_obs;

        // Per-observatory kept-observation counts: together with
        // `gen.attacks` these answer "what did each stage actually do"
        // in any run's manifest.
        for id in ObsId::ALL {
            obs::metrics::counter(&format!("observe.count.{}", id.slug()))
                .add(observations[id.index()].len() as u64);
        }

        StudyRun {
            config: config.clone(),
            plan,
            attacks,
            observations,
            netscout_alerts: alerts,
            netscout,
            obs_root,
            cache: ProjectionCache::new(),
        }
    }

    /// Observations of one observatory.
    pub fn observations(&self, id: ObsId) -> &[ObservedAttack] {
        &self.observations[id.index()]
    }

    /// Raw weekly attack counts (§5 aggregation), with the paper's
    /// missing-data gaps masked when configured. Memoized per series.
    pub fn weekly_series(&self, id: ObsId) -> &WeeklySeries {
        memo(&self.cache.weekly[id.index()], &self.cache.weekly_computed, "weekly", || {
            let mut s = WeeklySeries::new(id.name(), weekly_counts(self.observations(id)));
            if self.config.missing_data {
                match id {
                    ObsId::Orion => {
                        // ORION missing 2019Q3–Q4 (§6.1).
                        let lo = Date::new(2019, 7, 1).to_sim_time().week_index() as usize;
                        let hi = Date::new(2020, 1, 1).to_sim_time().week_index() as usize;
                        s.mask_range(lo, hi);
                    }
                    ObsId::IxpDp | ObsId::IxpRa => {
                        // IXP missing January 2019.
                        let hi = Date::new(2019, 2, 1).to_sim_time().week_index() as usize;
                        s.mask_range(0, hi);
                    }
                    _ => {}
                }
            }
            s
        })
    }

    /// Normalized weekly series (median of the first 15 present weeks).
    /// Memoized per series.
    pub fn normalized_series(&self, id: ObsId) -> &WeeklySeries {
        memo(
            &self.cache.normalized[id.index()],
            &self.cache.normalized_computed,
            "normalized",
            || self.weekly_series(id).normalize_to_baseline(),
        )
    }

    /// All ten main series, normalized, in Fig.-4 order.
    pub fn all_ten_normalized(&self) -> Vec<WeeklySeries> {
        ObsId::MAIN_TEN
            .iter()
            .map(|&id| self.normalized_series(id).clone())
            .collect()
    }

    /// Distinct (day, target IP) tuples of one observatory (§7).
    /// Memoized per series.
    pub fn target_tuples(&self, id: ObsId) -> &[TargetTuple] {
        let v: &Vec<TargetTuple> =
            memo(&self.cache.tuples[id.index()], &self.cache.tuples_computed, "tuples", || {
                distinct_target_tuples(self.observations(id))
            });
        v
    }

    /// Target tuples of the Netscout §7.2 baseline sample (~28 % of
    /// alerts). Memoized; reuses the run's own `Netscout` instance and
    /// observatory RNG root, and borrows the sampled observations
    /// instead of cloning them.
    pub fn netscout_baseline_tuples(&self) -> &[TargetTuple] {
        let v: &Vec<TargetTuple> =
            memo(&self.cache.baseline, &self.cache.baseline_computed, "baseline", || {
                let sample = self
                    .netscout
                    .baseline_sample(&self.netscout_alerts, &self.obs_root);
                distinct_target_tuples_of(sample.into_iter().map(|al| &al.observation))
            });
        v
    }

    /// Counts of projection computations so far (cache instrumentation).
    pub fn projection_stats(&self) -> ProjectionStats {
        ProjectionStats {
            weekly_computed: self.cache.weekly_computed.get() as usize,
            normalized_computed: self.cache.normalized_computed.get() as usize,
            tuples_computed: self.cache.tuples_computed.get() as usize,
            baseline_computed: self.cache.baseline_computed.get() as usize,
        }
    }

    /// Target tuples of the Akamai §7.2 join: both classes, restricted
    /// to "targets in the network prefix of Akamai" — the narrow set of
    /// prefixes advertised from the Prolexic ASN, not the full
    /// protected customer base (which is why the paper's Akamai joins
    /// are ≈100× smaller than Netscout's).
    pub fn akamai_tuples(&self) -> Vec<TargetTuple> {
        let mut all = self.target_tuples(ObsId::AkamaiRa).to_vec();
        all.extend_from_slice(self.target_tuples(ObsId::AkamaiDp));
        all.retain(|&(_, ip)| self.plan.akamai_announces(ip));
        all.sort_unstable();
        all.dedup();
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// One shared quick run for all pipeline tests.
    pub(crate) fn quick_run() -> &'static StudyRun {
        static RUN: OnceLock<StudyRun> = OnceLock::new();
        RUN.get_or_init(|| StudyRun::execute(&StudyConfig::quick()))
    }

    #[test]
    fn run_is_deterministic() {
        let a = StudyRun::execute(&StudyConfig::quick());
        let b = quick_run();
        assert_eq!(a.attacks.len(), b.attacks.len());
        for id in ObsId::MAIN_TEN {
            assert_eq!(
                a.observations(id).len(),
                b.observations(id).len(),
                "{} diverged",
                id.name()
            );
        }
    }

    #[test]
    fn every_observatory_sees_something() {
        let run = quick_run();
        for id in ObsId::MAIN_TEN {
            assert!(
                !run.observations(id).is_empty(),
                "{} saw nothing",
                id.name()
            );
        }
        assert!(!run.observations(ObsId::NewKid).is_empty());
    }

    #[test]
    fn telescopes_only_see_spoofed_dp() {
        let run = quick_run();
        use std::collections::HashMap;
        let by_id: HashMap<u64, &Attack> =
            run.attacks.iter().map(|a| (a.id.0, a)).collect();
        for id in [ObsId::Ucsd, ObsId::Orion] {
            for o in run.observations(id) {
                let a = by_id[&o.attack_id.0];
                assert_eq!(a.class, attackgen::AttackClass::DirectPathSpoofed);
            }
        }
    }

    #[test]
    fn honeypots_only_see_ra() {
        let run = quick_run();
        use std::collections::HashMap;
        let by_id: HashMap<u64, &Attack> =
            run.attacks.iter().map(|a| (a.id.0, a)).collect();
        for id in [ObsId::Hopscotch, ObsId::AmpPot] {
            for o in run.observations(id) {
                // Reconstructed events keep the id of their first
                // member; synthetic ids (u64::MAX range) never appear in
                // the event-level path.
                let a = by_id[&o.attack_id.0];
                assert!(a.class.is_reflection(), "{} saw a DP attack", id.name());
            }
        }
    }

    #[test]
    fn ucsd_sees_more_than_orion() {
        let run = quick_run();
        let ucsd = run.observations(ObsId::Ucsd).len();
        let orion = run.observations(ObsId::Orion).len();
        assert!(
            ucsd > 2 * orion,
            "UCSD {ucsd} should dwarf ORION {orion} (24× size)"
        );
    }

    #[test]
    fn weekly_series_lengths() {
        let run = quick_run();
        for id in ObsId::MAIN_TEN {
            assert_eq!(run.weekly_series(id).len(), simcore::STUDY_WEEKS);
        }
    }

    #[test]
    fn missing_data_masks_applied() {
        let run = quick_run();
        let orion = run.weekly_series(ObsId::Orion);
        let w = Date::new(2019, 9, 1).to_sim_time().week_index() as usize;
        assert!(orion.values[w].is_nan(), "ORION 2019Q3 should be masked");
        let ixp = run.weekly_series(ObsId::IxpDp);
        assert!(ixp.values[1].is_nan(), "IXP January 2019 should be masked");
        // UCSD has no gaps.
        assert!(run.weekly_series(ObsId::Ucsd).values[w].is_finite());
    }

    #[test]
    fn normalized_series_baseline_near_one() {
        let run = quick_run();
        let s = run.normalized_series(ObsId::Ucsd);
        let early: Vec<f64> = s.present().take(15).map(|(_, v)| v).collect();
        let m = analytics::median(&early);
        assert!((m - 1.0).abs() < 0.2, "baseline median {m}");
    }

    #[test]
    fn netscout_baseline_is_subset() {
        let run = quick_run();
        let baseline = run.netscout_baseline_tuples();
        let mut full = run.target_tuples(ObsId::NetscoutRa).to_vec();
        full.extend_from_slice(run.target_tuples(ObsId::NetscoutDp));
        let full: std::collections::HashSet<_> = full.into_iter().collect();
        assert!(!baseline.is_empty());
        assert!(baseline.len() < full.len());
        assert!(baseline.iter().all(|t| full.contains(t)));
    }

    #[test]
    fn target_tuples_deduplicated() {
        let run = quick_run();
        let tuples = run.target_tuples(ObsId::Hopscotch);
        let set: std::collections::HashSet<_> = tuples.iter().collect();
        assert_eq!(set.len(), tuples.len());
    }
}
