//! The study pipeline: build the Internet, generate 4.5 years of
//! attacks, run every observatory, and expose the paper's two data
//! projections (weekly attack counts and daily target tuples).

use crate::scenario::StudyConfig;
use analytics::{TargetTuple, WeeklySeries};
use attackgen::{distinct_target_tuples, weekly_counts, Attack, AttackGenerator, ObservedAttack};
use flowmon::{split_by_class, Akamai, IxpBlackholing, Netscout, NetscoutAlert};
use honeypot::{reconstruct_carpet_attacks, Honeypot};
use netmodel::InternetPlan;
use serde::{Deserialize, Serialize};
use simcore::{Date, SimRng};
use telescope::Telescope;

/// The ten observatory series of Fig. 4, plus NewKid (Appendix D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObsId {
    Orion,
    Ucsd,
    NetscoutDp,
    AkamaiDp,
    IxpDp,
    Hopscotch,
    AmpPot,
    NetscoutRa,
    AkamaiRa,
    IxpRa,
    NewKid,
}

impl ObsId {
    /// The ten main series, direct-path block first (Fig. 4 ordering).
    pub const MAIN_TEN: [ObsId; 10] = [
        ObsId::Orion,
        ObsId::Ucsd,
        ObsId::NetscoutDp,
        ObsId::AkamaiDp,
        ObsId::IxpDp,
        ObsId::Hopscotch,
        ObsId::AmpPot,
        ObsId::NetscoutRa,
        ObsId::AkamaiRa,
        ObsId::IxpRa,
    ];

    /// The four academic observatories of the §7 target analysis.
    pub const ACADEMIC: [ObsId; 4] = [ObsId::Orion, ObsId::Ucsd, ObsId::Hopscotch, ObsId::AmpPot];

    pub const fn name(self) -> &'static str {
        match self {
            ObsId::Orion => "ORION",
            ObsId::Ucsd => "UCSD",
            ObsId::NetscoutDp => "Netscout (DP)",
            ObsId::AkamaiDp => "Akamai (DP)",
            ObsId::IxpDp => "IXP (DP)",
            ObsId::Hopscotch => "Hopscotch",
            ObsId::AmpPot => "AmpPot",
            ObsId::NetscoutRa => "Netscout (RA)",
            ObsId::AkamaiRa => "Akamai (RA)",
            ObsId::IxpRa => "IXP (RA)",
            ObsId::NewKid => "NewKid",
        }
    }

    /// Does this series observe direct-path attacks (vs RA)?
    pub const fn is_direct_path(self) -> bool {
        matches!(
            self,
            ObsId::Orion | ObsId::Ucsd | ObsId::NetscoutDp | ObsId::AkamaiDp | ObsId::IxpDp
        )
    }

    fn index(self) -> usize {
        match self {
            ObsId::Orion => 0,
            ObsId::Ucsd => 1,
            ObsId::NetscoutDp => 2,
            ObsId::AkamaiDp => 3,
            ObsId::IxpDp => 4,
            ObsId::Hopscotch => 5,
            ObsId::AmpPot => 6,
            ObsId::NetscoutRa => 7,
            ObsId::AkamaiRa => 8,
            ObsId::IxpRa => 9,
            ObsId::NewKid => 10,
        }
    }
}

/// A completed study run.
pub struct StudyRun {
    pub config: StudyConfig,
    pub plan: InternetPlan,
    pub attacks: Vec<Attack>,
    /// Observation streams indexed by [`ObsId::index`].
    observations: Vec<Vec<ObservedAttack>>,
    /// All Netscout alerts (needed for the §7.2 baseline sample).
    pub netscout_alerts: Vec<NetscoutAlert>,
}

impl StudyRun {
    /// Execute the full pipeline. Deterministic in `config.seed`.
    ///
    /// Observatories run concurrently (they are independent readers of
    /// the attack stream); determinism is preserved because every
    /// observation RNG forks from (attack id, observatory name), never
    /// from shared mutable state.
    pub fn execute(config: &StudyConfig) -> StudyRun {
        let root = SimRng::new(config.seed);
        let mut plan_rng = root.fork_named("plan");
        let plan = InternetPlan::build(&config.net, &mut plan_rng);
        let attacks =
            AttackGenerator::new(&plan, config.gen.clone(), &root).generate_study();
        let obs_root = root.fork_named("observatories");

        let ucsd = Telescope::ucsd(&plan);
        let orion = Telescope::orion(&plan);
        let hopscotch = Honeypot::hopscotch(&plan);
        let amppot = Honeypot::amppot(&plan);
        let newkid = Honeypot::newkid(&plan);
        let ixp = IxpBlackholing::with_defaults(&plan);
        let netscout = Netscout::with_defaults(&plan);
        let akamai = Akamai::with_defaults(&plan);

        // Honeypot post-processing: CCC / Appendix-I reconstruction
        // merges concurrent same-prefix events.
        let carpet_gap_secs = 3600;

        let mut ucsd_obs = Vec::new();
        let mut orion_obs = Vec::new();
        let mut hopscotch_obs = Vec::new();
        let mut amppot_obs = Vec::new();
        let mut newkid_obs = Vec::new();
        let mut ixp_pair = (Vec::new(), Vec::new());
        let mut akamai_pair = (Vec::new(), Vec::new());
        let mut alerts = Vec::new();

        crossbeam::thread::scope(|s| {
            s.spawn(|_| ucsd_obs = ucsd.observe_all(&attacks, &obs_root));
            s.spawn(|_| orion_obs = orion.observe_all(&attacks, &obs_root));
            s.spawn(|_| {
                let raw = hopscotch.observe_all(&attacks, &obs_root);
                hopscotch_obs = reconstruct_carpet_attacks(&plan, &raw, carpet_gap_secs);
            });
            s.spawn(|_| {
                let raw = amppot.observe_all(&attacks, &obs_root);
                amppot_obs = reconstruct_carpet_attacks(&plan, &raw, carpet_gap_secs);
            });
            s.spawn(|_| {
                let raw = newkid.observe_all(&attacks, &obs_root);
                newkid_obs = reconstruct_carpet_attacks(&plan, &raw, carpet_gap_secs);
            });
            s.spawn(|_| ixp_pair = ixp.observe_all(&attacks, &obs_root));
            s.spawn(|_| akamai_pair = akamai.observe_all(&attacks, &obs_root));
            s.spawn(|_| alerts = netscout.observe_all(&attacks, &obs_root));
        })
        .expect("observatory thread panicked");

        let (netscout_ra, netscout_dp) = split_by_class(&alerts);
        let (ixp_ra, ixp_dp) = ixp_pair;
        let (akamai_ra, akamai_dp) = akamai_pair;

        let mut observations = vec![Vec::new(); 11];
        observations[ObsId::Orion.index()] = orion_obs;
        observations[ObsId::Ucsd.index()] = ucsd_obs;
        observations[ObsId::NetscoutDp.index()] = netscout_dp;
        observations[ObsId::AkamaiDp.index()] = akamai_dp;
        observations[ObsId::IxpDp.index()] = ixp_dp;
        observations[ObsId::Hopscotch.index()] = hopscotch_obs;
        observations[ObsId::AmpPot.index()] = amppot_obs;
        observations[ObsId::NetscoutRa.index()] = netscout_ra;
        observations[ObsId::AkamaiRa.index()] = akamai_ra;
        observations[ObsId::IxpRa.index()] = ixp_ra;
        observations[ObsId::NewKid.index()] = newkid_obs;

        StudyRun {
            config: config.clone(),
            plan,
            attacks,
            observations,
            netscout_alerts: alerts,
        }
    }

    /// Observations of one observatory.
    pub fn observations(&self, id: ObsId) -> &[ObservedAttack] {
        &self.observations[id.index()]
    }

    /// Raw weekly attack counts (§5 aggregation), with the paper's
    /// missing-data gaps masked when configured.
    pub fn weekly_series(&self, id: ObsId) -> WeeklySeries {
        let mut s = WeeklySeries::new(id.name(), weekly_counts(self.observations(id)));
        if self.config.missing_data {
            match id {
                ObsId::Orion => {
                    // ORION missing 2019Q3–Q4 (§6.1).
                    let lo = Date::new(2019, 7, 1).to_sim_time().week_index() as usize;
                    let hi = Date::new(2020, 1, 1).to_sim_time().week_index() as usize;
                    s.mask_range(lo, hi);
                }
                ObsId::IxpDp | ObsId::IxpRa => {
                    // IXP missing January 2019.
                    let hi = Date::new(2019, 2, 1).to_sim_time().week_index() as usize;
                    s.mask_range(0, hi);
                }
                _ => {}
            }
        }
        s
    }

    /// Normalized weekly series (median of the first 15 present weeks).
    pub fn normalized_series(&self, id: ObsId) -> WeeklySeries {
        self.weekly_series(id).normalize_to_baseline()
    }

    /// All ten main series, normalized, in Fig.-4 order.
    pub fn all_ten_normalized(&self) -> Vec<WeeklySeries> {
        ObsId::MAIN_TEN
            .iter()
            .map(|&id| self.normalized_series(id))
            .collect()
    }

    /// Distinct (day, target IP) tuples of one observatory (§7).
    pub fn target_tuples(&self, id: ObsId) -> Vec<TargetTuple> {
        distinct_target_tuples(self.observations(id))
    }

    /// Target tuples of the Netscout §7.2 baseline sample (~28 % of
    /// alerts).
    pub fn netscout_baseline_tuples(&self) -> Vec<TargetTuple> {
        let netscout = Netscout::with_defaults(&self.plan);
        let root = SimRng::new(self.config.seed).fork_named("observatories");
        let sample = netscout.baseline_sample(&self.netscout_alerts, &root);
        let obs: Vec<ObservedAttack> = sample.iter().map(|a| a.observation.clone()).collect();
        distinct_target_tuples(&obs)
    }

    /// Target tuples of the Akamai §7.2 join: both classes, restricted
    /// to "targets in the network prefix of Akamai" — the narrow set of
    /// prefixes advertised from the Prolexic ASN, not the full
    /// protected customer base (which is why the paper's Akamai joins
    /// are ≈100× smaller than Netscout's).
    pub fn akamai_tuples(&self) -> Vec<TargetTuple> {
        let mut all = self.target_tuples(ObsId::AkamaiRa);
        all.extend(self.target_tuples(ObsId::AkamaiDp));
        all.retain(|&(_, ip)| self.plan.akamai_announces(ip));
        all.sort_unstable();
        all.dedup();
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// One shared quick run for all pipeline tests.
    pub(crate) fn quick_run() -> &'static StudyRun {
        static RUN: OnceLock<StudyRun> = OnceLock::new();
        RUN.get_or_init(|| StudyRun::execute(&StudyConfig::quick()))
    }

    #[test]
    fn run_is_deterministic() {
        let a = StudyRun::execute(&StudyConfig::quick());
        let b = quick_run();
        assert_eq!(a.attacks.len(), b.attacks.len());
        for id in ObsId::MAIN_TEN {
            assert_eq!(
                a.observations(id).len(),
                b.observations(id).len(),
                "{} diverged",
                id.name()
            );
        }
    }

    #[test]
    fn every_observatory_sees_something() {
        let run = quick_run();
        for id in ObsId::MAIN_TEN {
            assert!(
                !run.observations(id).is_empty(),
                "{} saw nothing",
                id.name()
            );
        }
        assert!(!run.observations(ObsId::NewKid).is_empty());
    }

    #[test]
    fn telescopes_only_see_spoofed_dp() {
        let run = quick_run();
        use std::collections::HashMap;
        let by_id: HashMap<u64, &Attack> =
            run.attacks.iter().map(|a| (a.id.0, a)).collect();
        for id in [ObsId::Ucsd, ObsId::Orion] {
            for o in run.observations(id) {
                let a = by_id[&o.attack_id.0];
                assert_eq!(a.class, attackgen::AttackClass::DirectPathSpoofed);
            }
        }
    }

    #[test]
    fn honeypots_only_see_ra() {
        let run = quick_run();
        use std::collections::HashMap;
        let by_id: HashMap<u64, &Attack> =
            run.attacks.iter().map(|a| (a.id.0, a)).collect();
        for id in [ObsId::Hopscotch, ObsId::AmpPot] {
            for o in run.observations(id) {
                // Reconstructed events keep the id of their first
                // member; synthetic ids (u64::MAX range) never appear in
                // the event-level path.
                let a = by_id[&o.attack_id.0];
                assert!(a.class.is_reflection(), "{} saw a DP attack", id.name());
            }
        }
    }

    #[test]
    fn ucsd_sees_more_than_orion() {
        let run = quick_run();
        let ucsd = run.observations(ObsId::Ucsd).len();
        let orion = run.observations(ObsId::Orion).len();
        assert!(
            ucsd > 2 * orion,
            "UCSD {ucsd} should dwarf ORION {orion} (24× size)"
        );
    }

    #[test]
    fn weekly_series_lengths() {
        let run = quick_run();
        for id in ObsId::MAIN_TEN {
            assert_eq!(run.weekly_series(id).len(), simcore::STUDY_WEEKS);
        }
    }

    #[test]
    fn missing_data_masks_applied() {
        let run = quick_run();
        let orion = run.weekly_series(ObsId::Orion);
        let w = Date::new(2019, 9, 1).to_sim_time().week_index() as usize;
        assert!(orion.values[w].is_nan(), "ORION 2019Q3 should be masked");
        let ixp = run.weekly_series(ObsId::IxpDp);
        assert!(ixp.values[1].is_nan(), "IXP January 2019 should be masked");
        // UCSD has no gaps.
        assert!(run.weekly_series(ObsId::Ucsd).values[w].is_finite());
    }

    #[test]
    fn normalized_series_baseline_near_one() {
        let run = quick_run();
        let s = run.normalized_series(ObsId::Ucsd);
        let early: Vec<f64> = s.present().take(15).map(|(_, v)| v).collect();
        let m = analytics::median(&early);
        assert!((m - 1.0).abs() < 0.2, "baseline median {m}");
    }

    #[test]
    fn netscout_baseline_is_subset() {
        let run = quick_run();
        let baseline = run.netscout_baseline_tuples();
        let mut full = run.target_tuples(ObsId::NetscoutRa);
        full.extend(run.target_tuples(ObsId::NetscoutDp));
        let full: std::collections::HashSet<_> = full.into_iter().collect();
        assert!(!baseline.is_empty());
        assert!(baseline.len() < full.len());
        assert!(baseline.iter().all(|t| full.contains(t)));
    }

    #[test]
    fn target_tuples_deduplicated() {
        let run = quick_run();
        let tuples = run.target_tuples(ObsId::Hopscotch);
        let set: std::collections::HashSet<_> = tuples.iter().collect();
        assert_eq!(set.len(), tuples.len());
    }
}
