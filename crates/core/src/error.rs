//! Typed errors for the study pipeline (DESIGN.md §6).
//!
//! Every failure path in config construction, pipeline execution, the
//! sweep harness, and the CLI surfaces as a [`Error`] value with a
//! stable exit code — never a panic. The taxonomy is deliberately
//! small:
//!
//! * [`Error::Config`] — an invariant of [`StudyConfig`] is violated
//!   (negative rate, `sav_reduction` outside `[0, 1]`, zero workers…).
//!   These are caller mistakes: exit code 2, like a usage error.
//! * [`Error::Io`] — the OS refused a read/write (CSV output dir,
//!   telemetry manifest). Exit code 1.
//! * [`Error::Analytics`] — a statistic could not be produced from the
//!   data at hand (unknown experiment id, empty projection where one
//!   is required). Degenerate *inputs* inside analytics yield
//!   `None`/NaN instead; this variant is for callers that need a
//!   diagnostic rather than a silent absence. Exit code 1.
//!
//! [`StudyConfig`]: crate::scenario::StudyConfig

use std::fmt;

/// A typed, displayable failure in the study pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A [`crate::StudyConfig`] invariant is violated. `field` is the
    /// dotted path of the offending parameter.
    Config {
        field: &'static str,
        message: String,
    },
    /// An operating-system I/O failure, with the path involved.
    Io { path: String, message: String },
    /// An analytics product could not be computed.
    Analytics { context: String, message: String },
}

impl Error {
    /// Construct a config-invariant violation.
    pub fn config(field: &'static str, message: impl Into<String>) -> Error {
        Error::Config {
            field,
            message: message.into(),
        }
    }

    /// Construct an I/O failure carrying its path.
    pub fn io(path: impl Into<String>, err: &std::io::Error) -> Error {
        Error::Io {
            path: path.into(),
            message: err.to_string(),
        }
    }

    /// Construct an analytics failure.
    pub fn analytics(context: impl Into<String>, message: impl Into<String>) -> Error {
        Error::Analytics {
            context: context.into(),
            message: message.into(),
        }
    }

    /// Process exit code the CLI maps this error to: config errors are
    /// usage-class (2), runtime failures are 1.
    pub fn exit_code(&self) -> u8 {
        match self {
            Error::Config { .. } => 2,
            Error::Io { .. } | Error::Analytics { .. } => 1,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Config { field, message } => {
                write!(f, "invalid config: {field}: {message}")
            }
            Error::Io { path, message } => write!(f, "io error: {path}: {message}"),
            Error::Analytics { context, message } => {
                write!(f, "analytics error: {context}: {message}")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Pipeline result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_exit_codes() {
        let c = Error::config("gen.timeline.sav_reduction", "must be within [0, 1], got 1.5");
        assert_eq!(c.exit_code(), 2);
        assert_eq!(
            c.to_string(),
            "invalid config: gen.timeline.sav_reduction: must be within [0, 1], got 1.5"
        );
        let io = Error::io(
            "results/x.csv",
            &std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        );
        assert_eq!(io.exit_code(), 1);
        assert!(io.to_string().starts_with("io error: results/x.csv"));
        let a = Error::analytics("trends", "no observations");
        assert_eq!(a.exit_code(), 1);
        assert!(a.to_string().contains("trends"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(Error::config("seed", "nope"));
        assert!(e.to_string().contains("seed"));
    }
}
