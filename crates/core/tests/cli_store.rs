//! End-to-end acceptance for `--store` (ISSUE 8): a second CLI
//! invocation against a warm store recomputes nothing and prints
//! byte-identical stdout; with every cell corrupted it still exits 0
//! with identical output while counting the rejects; and the `store
//! list` / `store gc` subcommands inspect and bound the directory.
//! Each invocation is a real child process, so this exercises the
//! actual cross-process path the store exists for.

use serde::Value;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ddoscovery-cli-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_cli(args: &[&str], store: &Path, telemetry: Option<&Path>) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ddoscovery"));
    cmd.args(args).arg("--store").arg(store).env("DDOSCOVERY_LOG", "error");
    if let Some(path) = telemetry {
        cmd.arg("--telemetry").arg(path);
    }
    cmd.output().expect("spawn ddoscovery")
}

fn uint(v: &Value) -> u64 {
    match v {
        Value::UInt(n) => *n,
        Value::Int(n) => *n as u64,
        other => panic!("expected integer, got {other:?}"),
    }
}

/// Sum a `stage.<stage>.<kind>` counter family from a telemetry
/// manifest; absent counters (never registered) read as zero.
fn stage_total(manifest: &Value, kind: &str) -> u64 {
    let counters = manifest.get("metrics").unwrap().get("counters").unwrap();
    ["plan", "attacks", "observations"]
        .iter()
        .filter_map(|stage| counters.get(&format!("stage.{stage}.{kind}")))
        .map(uint)
        .sum()
}

fn read_manifest(path: &Path) -> Value {
    let text = std::fs::read_to_string(path).expect("manifest file");
    std::fs::remove_file(path).ok();
    serde_json::from_str(&text).expect("manifest parses")
}

fn cell_files(store: &Path) -> Vec<PathBuf> {
    let mut cells = Vec::new();
    for stage in ["plan", "attacks", "observations"] {
        let Ok(entries) = std::fs::read_dir(store.join(stage)) else { continue };
        for entry in entries.flatten() {
            if !entry.file_name().to_string_lossy().starts_with('.') {
                cells.push(entry.path());
            }
        }
    }
    cells.sort();
    cells
}

#[test]
fn warm_invocation_recomputes_nothing_and_matches_cold_stdout() {
    let store = scratch("warm");
    let trends = ["trends", "--quick", "--workers", "2"];

    let m1 = std::env::temp_dir().join(format!("ddoscovery-cli-store-m1-{}.json", std::process::id()));
    let cold = run_cli(&trends, &store, Some(&m1));
    assert!(cold.status.success(), "cold run failed: {}", String::from_utf8_lossy(&cold.stderr));
    let cold_manifest = read_manifest(&m1);
    assert!(stage_total(&cold_manifest, "computed") >= 14, "cold run computes every stage");
    assert!(stage_total(&cold_manifest, "disk_write") >= 14, "cold run persists every stage");
    assert_eq!(cell_files(&store).len(), 14, "one cell per stage output");

    // Second process: zero plan/attack/observation recomputation,
    // byte-identical stdout.
    let m2 = std::env::temp_dir().join(format!("ddoscovery-cli-store-m2-{}.json", std::process::id()));
    let warm = run_cli(&trends, &store, Some(&m2));
    assert!(warm.status.success(), "warm run failed: {}", String::from_utf8_lossy(&warm.stderr));
    assert_eq!(warm.stdout, cold.stdout, "warm stdout diverged from cold stdout");
    let warm_manifest = read_manifest(&m2);
    assert_eq!(stage_total(&warm_manifest, "computed"), 0, "warm run must recompute nothing");
    assert_eq!(stage_total(&warm_manifest, "disk_hit"), 14, "warm run must load all 14 cells");
    assert_eq!(stage_total(&warm_manifest, "disk_reject"), 0);

    // Corrupt every cell: the run degrades to a recompute, not a
    // failure — exit 0, identical bytes, every reject counted.
    for path in cell_files(&store) {
        let mut bytes = std::fs::read(&path).expect("read cell");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, bytes).expect("corrupt cell");
    }
    let m3 = std::env::temp_dir().join(format!("ddoscovery-cli-store-m3-{}.json", std::process::id()));
    let hurt = run_cli(&trends, &store, Some(&m3));
    assert!(hurt.status.success(), "corrupted store must not fail the run");
    assert_eq!(hurt.stdout, cold.stdout, "recovery stdout diverged from cold stdout");
    let hurt_manifest = read_manifest(&m3);
    assert_eq!(stage_total(&hurt_manifest, "disk_reject"), 14, "every corrupt cell rejects");
    assert_eq!(stage_total(&hurt_manifest, "computed"), stage_total(&cold_manifest, "computed"));

    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn store_subcommand_lists_and_collects_garbage() {
    let store = scratch("gc");
    let seeded = run_cli(&["trends", "--quick", "--workers", "2"], &store, None);
    assert!(seeded.status.success());

    let list = run_cli(&["store", "list"], &store, None);
    assert!(list.status.success(), "store list failed: {}", String::from_utf8_lossy(&list.stderr));
    let listing = String::from_utf8(list.stdout).unwrap();
    for stage in ["plan", "attacks", "observations"] {
        assert!(listing.contains(stage), "listing missing stage {stage}:\n{listing}");
    }
    assert!(listing.contains("total 14 cell(s)"), "listing missing totals:\n{listing}");

    // gc to zero bytes evicts everything; a fresh list reports empty.
    let gc = run_cli(&["store", "gc", "--max-bytes", "0"], &store, None);
    assert!(gc.status.success(), "store gc failed: {}", String::from_utf8_lossy(&gc.stderr));
    let report = String::from_utf8(gc.stdout).unwrap();
    assert!(report.contains("removed 14 cell(s)"), "gc report wrong:\n{report}");
    assert!(cell_files(&store).is_empty(), "gc left cells behind");

    let relist = run_cli(&["store", "list"], &store, None);
    assert!(relist.status.success());

    // gc without a bound is a usage error, not a silent wipe.
    let bare = run_cli(&["store", "gc"], &store, None);
    assert_eq!(bare.status.code(), Some(2), "gc without --max-bytes must be a usage error");

    let _ = std::fs::remove_dir_all(&store);
}
