//! End-to-end CLI telemetry: `ddoscovery --telemetry out.json` must
//! emit a manifest with per-stage latency histograms, per-observatory
//! observation counts, pool utilization, and projection cache
//! counters — and keep stdout machine-readable. Runs the real binary
//! in a child process so the registry holds exactly one run.

use serde::Value;
use std::path::PathBuf;
use std::process::Command;

fn manifest_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ddoscovery-{tag}-{}.json", std::process::id()))
}

fn uint(v: &Value) -> u64 {
    match v {
        Value::UInt(n) => *n,
        Value::Int(n) => *n as u64,
        other => panic!("expected integer, got {other:?}"),
    }
}

#[test]
fn telemetry_flag_emits_full_manifest() {
    let path = manifest_path("flag");
    let out = Command::new(env!("CARGO_BIN_EXE_ddoscovery"))
        .args(["trends", "--quick", "--workers", "2", "--telemetry"])
        .arg(&path)
        .env("DDOSCOVERY_LOG", "error")
        .output()
        .expect("spawn ddoscovery");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));

    // stdout stays machine-readable: the trends table only.
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.starts_with("observatory"));
    assert!(!stdout.contains("telemetry"));

    // The summary table bypasses log levels; leveled [info] lines are
    // suppressed at DDOSCOVERY_LOG=error.
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("== telemetry: quick run"));
    assert!(stderr.contains("pool.imbalance"));
    assert!(!stderr.contains("[info"));

    let text = std::fs::read_to_string(&path).expect("manifest file");
    std::fs::remove_file(&path).ok();
    let v: Value = serde_json::from_str(&text).expect("manifest parses");

    assert_eq!(uint(v.get("schema").unwrap()), 1);
    let run = v.get("run").unwrap();
    assert_eq!(run.get("scenario"), Some(&Value::Str("quick".into())));
    assert_eq!(uint(run.get("seed").unwrap()), 0xDD05_C0DE);
    assert_eq!(uint(run.get("workers").unwrap()), 2);
    assert!(matches!(run.get("config_hash"), Some(Value::UInt(_))));

    let metrics = v.get("metrics").unwrap();
    let counters = metrics.get("counters").unwrap();
    let histograms = metrics.get("histograms").unwrap();
    let gauges = metrics.get("gauges").unwrap();

    // Per-stage latency histograms, nested under the CLI's run span.
    for h in ["span.run", "span.run.generate", "span.run.observe", "span.run.project"] {
        let hist = histograms.get(h).unwrap_or_else(|| panic!("missing histogram {h}"));
        assert!(uint(hist.get("count").unwrap()) >= 1, "{h} recorded nothing");
        let bounds = match hist.get("bounds").unwrap() {
            Value::Array(b) => b.len(),
            other => panic!("bounds not an array: {other:?}"),
        };
        let buckets = match hist.get("buckets").unwrap() {
            Value::Array(b) => b.len(),
            other => panic!("buckets not an array: {other:?}"),
        };
        assert_eq!(buckets, bounds + 1, "{h} missing its overflow bucket");
    }
    // Worker-level instrumentation.
    assert!(histograms.get("observe.shard_ns").is_some());
    assert!(histograms.get("pool.worker_busy_ns").is_some());
    assert!(histograms.get("gen.attacks_per_week").is_some());

    // Per-observatory observation counts, all eleven series.
    for slug in [
        "orion", "ucsd", "netscout_dp", "akamai_dp", "ixp_dp", "hopscotch", "amppot",
        "netscout_ra", "akamai_ra", "ixp_ra", "newkid",
    ] {
        let c = counters
            .get(&format!("observe.count.{slug}"))
            .unwrap_or_else(|| panic!("missing observe.count.{slug}"));
        assert!(uint(c) > 0, "{slug} observed nothing");
    }

    // Pool utilization and generation tallies.
    assert!(uint(counters.get("pool.tasks").unwrap()) > 0);
    assert!(uint(counters.get("gen.attacks").unwrap()) > 1000);
    assert!(uint(counters.get("gen.rng_forks").unwrap()) > 0);
    let imbalance = match gauges.get("pool.imbalance") {
        Some(Value::Float(f)) => *f,
        other => panic!("pool.imbalance missing or not a float: {other:?}"),
    };
    assert!(imbalance >= 1.0, "imbalance ratio {imbalance} below 1");

    // Projection cache counters: trends computes weekly + normalized
    // once per main series; hit counters are registered (zero) even
    // when nothing re-read a projection, so diffs stay schema-stable.
    assert_eq!(uint(counters.get("project.weekly.computed").unwrap()), 10);
    assert_eq!(uint(counters.get("project.normalized.computed").unwrap()), 10);
    for kind in ["weekly", "normalized", "tuples", "baseline"] {
        assert!(
            counters.get(&format!("project.{kind}.hit")).is_some(),
            "project.{kind}.hit missing from manifest"
        );
    }
}

#[test]
fn telemetry_env_var_is_honored() {
    let path = manifest_path("env");
    let out = Command::new(env!("CARGO_BIN_EXE_ddoscovery"))
        .args(["trends", "--quick"])
        .env("DDOSCOVERY_TELEMETRY", &path)
        .env("DDOSCOVERY_WORKERS", "3")
        .output()
        .expect("spawn ddoscovery");
    assert!(out.status.success());
    let text = std::fs::read_to_string(&path).expect("env-var manifest file");
    std::fs::remove_file(&path).ok();
    let v: Value = serde_json::from_str(&text).unwrap();
    // No --workers flag: the run captures the env-driven default pool.
    assert_eq!(v.get("run").unwrap().get("workers"), Some(&Value::Null));
    assert!(v.get("metrics").unwrap().get("counters").unwrap().get("gen.attacks").is_some());
}
