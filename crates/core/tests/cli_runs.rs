//! End-to-end CLI flight recorder + run history: `--trace` must write
//! Chrome trace-event JSON with matched spans across distinct worker
//! lanes while leaving stdout byte-identical, and `ddoscovery runs
//! list|show|diff` must read the persistent store back — including the
//! `--gate` regression exit and graceful skipping of corrupt
//! manifests. Each scenario runs the real binary in child processes so
//! every registry and store observation covers exactly the runs it
//! created.

use serde::Value;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn sandbox(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ddoscovery-cli-runs-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create sandbox");
    dir
}

fn ddoscovery(runs_dir: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ddoscovery"))
        .args(args)
        .arg("--runs-dir")
        .arg(runs_dir)
        .output()
        .expect("spawn ddoscovery")
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("utf8 stdout")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Stems of the store directory, ordered by the store-wide sequence
/// suffix (`-NNNN`), i.e. in run order.
fn stems(runs_dir: &Path) -> Vec<String> {
    let mut stems: Vec<String> = std::fs::read_dir(runs_dir)
        .expect("read store dir")
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            name.strip_suffix(".json").map(str::to_string)
        })
        .collect();
    stems.sort_by_key(|s| s.rsplit('-').next().and_then(|n| n.parse::<u64>().ok()));
    stems
}

#[test]
fn trace_flag_writes_valid_chrome_json_and_leaves_stdout_untouched() {
    let dir = sandbox("trace");
    let runs_dir = dir.join("runs");
    let trace = dir.join("trace.json");
    let telemetry = dir.join("telemetry.json");

    let traced = ddoscovery(
        &runs_dir,
        &[
            "trends",
            "--quick",
            "--workers",
            "4",
            "--trace",
            trace.to_str().expect("utf8 path"),
            "--telemetry",
            telemetry.to_str().expect("utf8 path"),
        ],
    );
    assert!(traced.status.success(), "stderr: {}", stderr(&traced));

    // Side-channel invariant at the process level: the traced run's
    // stdout matches an untraced run of the identical config.
    let plain = ddoscovery(&runs_dir, &["trends", "--quick", "--workers", "4"]);
    assert!(plain.status.success());
    assert_eq!(
        stdout(&traced),
        stdout(&plain),
        "--trace changed the study's stdout"
    );

    // The trace document parses and its spans are well-formed: per
    // lane (tid), every E closes the innermost open B of the same name.
    let text = std::fs::read_to_string(&trace).expect("trace file");
    let doc: Value = serde_json::from_str(&text).expect("trace parses");
    let Some(Value::Array(events)) = doc.get("traceEvents") else {
        panic!("missing traceEvents array");
    };
    assert!(!events.is_empty(), "empty trace");
    let mut stacks: Vec<(u64, Vec<String>)> = Vec::new();
    let mut shard_lanes: Vec<u64> = Vec::new();
    let mut cache_names: Vec<String> = Vec::new();
    for ev in events {
        let Some(Value::Str(ph)) = ev.get("ph") else { panic!("event without ph") };
        let Some(Value::Str(name)) = ev.get("name") else { panic!("event without name") };
        let tid = match ev.get("tid") {
            Some(Value::UInt(t)) => *t,
            other => panic!("event tid missing or not uint: {other:?}"),
        };
        let stack = match stacks.iter_mut().find(|(lane, _)| *lane == tid) {
            Some((_, s)) => s,
            None => {
                stacks.push((tid, Vec::new()));
                &mut stacks.last_mut().expect("just pushed").1
            }
        };
        match ph.as_str() {
            "B" => {
                if name == "pool.shard" && !shard_lanes.contains(&tid) {
                    shard_lanes.push(tid);
                }
                stack.push(name.clone());
            }
            "E" => assert_eq!(stack.pop().as_deref(), Some(name.as_str()), "mismatched E"),
            "i" => {
                if name.starts_with("cache.") {
                    cache_names.push(name.clone());
                }
            }
            other => panic!("unknown phase {other}"),
        }
    }
    for (lane, stack) in &stacks {
        assert!(stack.is_empty(), "lane {lane} left spans open: {stack:?}");
    }
    assert!(
        shard_lanes.len() >= 2,
        "pool fan-out used {} lane(s), expected distinct worker lanes",
        shard_lanes.len()
    );
    assert!(
        cache_names.iter().any(|n| n.starts_with("cache.plan.")),
        "no stage-cache plan events in {cache_names:?}"
    );

    // Satellite: the projection stage's peak RSS lands in the manifest
    // gauges (procfs-backed, so assert presence only where it exists).
    let manifest: Value =
        serde_json::from_str(&std::fs::read_to_string(&telemetry).expect("manifest"))
            .expect("manifest parses");
    let gauges = manifest.get("metrics").and_then(|m| m.get("gauges")).expect("gauges");
    if cfg!(target_os = "linux") {
        match gauges.get("run.peak_rss.project") {
            Some(Value::Float(bytes)) => assert!(*bytes > 0.0, "project peak RSS not positive"),
            other => panic!("run.peak_rss.project missing or not a float: {other:?}"),
        }
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn store_accumulates_runs_and_diff_gates_regressions() {
    let dir = sandbox("store");
    let runs_dir = dir.join("runs");
    let telemetry = dir.join("t.json");
    let telemetry = telemetry.to_str().expect("utf8 path");

    // Two identical runs and one with a different seed (the injected
    // regression: every deterministic counter moves with the seed).
    for seed_args in [None, None, Some(["--seed", "99"])] {
        let mut args = vec!["trends", "--quick", "--workers", "1", "--telemetry", telemetry];
        if let Some(extra) = seed_args {
            args.extend(extra);
        }
        let out = ddoscovery(&runs_dir, &args);
        assert!(out.status.success(), "stderr: {}", stderr(&out));
    }

    // Sequence numbering is store-wide: -0001/-0002 share the first
    // config's fingerprint, the reseeded -0003 gets its own stem.
    let stems = stems(&runs_dir);
    assert_eq!(stems.len(), 3, "store holds {stems:?}");
    assert_eq!(stems[0][16..], *"-0001");
    assert_eq!(stems[2][16..], *"-0003");
    let same: Vec<&String> = stems.iter().filter(|s| s[..16] == stems[0][..16]).collect();
    assert_eq!(same.len(), 2, "identical configs share a stem prefix: {stems:?}");
    let reseeded = stems
        .iter()
        .find(|s| s[..16] != stems[0][..16])
        .expect("reseeded run has its own fingerprint");

    // runs list: one row per run.
    let list = ddoscovery(&runs_dir, &["runs", "list"]);
    assert!(list.status.success());
    let table = stdout(&list);
    for stem in &stems {
        assert!(table.contains(stem.as_str()), "list missing {stem}:\n{table}");
    }

    // runs show: the stored manifest verbatim on stdout.
    let show = ddoscovery(&runs_dir, &["runs", "show", &stems[0]]);
    assert!(show.status.success());
    let shown: Value = serde_json::from_str(&stdout(&show)).expect("shown manifest parses");
    assert_eq!(
        shown.get("run").and_then(|r| r.get("scenario")),
        Some(&Value::Str("quick".into()))
    );

    // Identical configs: deterministic metrics match, so a tight gate
    // over counters/gauges passes (span histograms are report-only).
    let ok = ddoscovery(&runs_dir, &["runs", "diff", &stems[0], &stems[1], "--gate", "50"]);
    assert!(
        ok.status.success(),
        "same-config diff breached the gate: {}",
        stderr(&ok)
    );
    assert!(stdout(&ok).contains("== runs diff"), "no diff header:\n{}", stdout(&ok));

    // The injected regression: a reseeded run moves the deterministic
    // counters, so a tight gate must fail the process.
    let bad = ddoscovery(&runs_dir, &["runs", "diff", &stems[0], reseeded, "--gate", "0.01"]);
    assert_eq!(bad.status.code(), Some(1), "gate breach must exit 1");
    let err = stderr(&bad);
    assert!(err.contains("gate breach"), "no breach report:\n{err}");
    assert!(stdout(&bad).contains("!! seeds differ"), "missing seed warning");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_manifests_are_skipped_with_a_warning() {
    let dir = sandbox("corrupt");
    let runs_dir = dir.join("runs");
    std::fs::create_dir_all(&runs_dir).expect("create runs dir");
    std::fs::write(runs_dir.join("deadbeefdeadbeef-0001.json"), "{ not json").expect("write");

    let list = ddoscovery(&runs_dir, &["runs", "list"]);
    assert!(list.status.success(), "corrupt entry must not fail list");
    assert!(
        stderr(&list).contains("skipping corrupt run deadbeefdeadbeef-0001"),
        "no skip warning:\n{}",
        stderr(&list)
    );

    // diff against a corrupt run reports the load error and exits 1 —
    // never a panic.
    let diff = ddoscovery(
        &runs_dir,
        &["runs", "diff", "deadbeefdeadbeef-0001", "deadbeefdeadbeef-0001"],
    );
    assert_eq!(diff.status.code(), Some(1));
    assert!(!stderr(&diff).contains("panicked"), "diff panicked: {}", stderr(&diff));

    std::fs::remove_dir_all(&dir).ok();
}
