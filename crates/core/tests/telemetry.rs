//! The telemetry layer's non-negotiable invariant: metrics, spans, and
//! manifests are a pure side channel. Study output must be
//! byte-identical with telemetry enabled, disabled, and at any worker
//! count.

use ddoscovery::{ObsId, StudyConfig, StudyRun};

/// Every projection the paper consumes, flattened to bytes: all eleven
/// weekly series (raw and normalized, NaN masks included via bit
/// patterns), all eleven target-tuple sets, and the §7.2 baseline
/// samples.
fn output_fingerprint(run: &StudyRun) -> Vec<u8> {
    let mut out = Vec::new();
    for id in ObsId::ALL {
        out.extend(id.slug().as_bytes());
        let weekly = run.weekly_series(id);
        out.extend(weekly.name.as_bytes());
        for v in &weekly.values {
            out.extend(v.to_bits().to_le_bytes());
        }
        for v in &run.normalized_series(id).values {
            out.extend(v.to_bits().to_le_bytes());
        }
        for &(day, ip) in run.target_tuples(id) {
            out.extend(day.to_le_bytes());
            out.extend(ip.0.to_le_bytes());
        }
    }
    for &(day, ip) in run.netscout_baseline_tuples() {
        out.extend(day.to_le_bytes());
        out.extend(ip.0.to_le_bytes());
    }
    for (day, ip) in run.akamai_tuples() {
        out.extend(day.to_le_bytes());
        out.extend(ip.0.to_le_bytes());
    }
    out
}

#[test]
fn output_is_byte_identical_across_telemetry_state_and_worker_counts() {
    let mut cfg = StudyConfig::quick();
    cfg.workers = Some(1);
    // Bypass the stage cache: this test must compare actual
    // recomputations (cache-on/off equivalence has its own invariant
    // test in tests/stage_cache.rs).
    cfg.stage_cache = Some(0);

    obs::set_enabled(true);
    let baseline = output_fingerprint(&StudyRun::execute(&cfg));
    assert!(!baseline.is_empty());

    // Telemetry off: same bytes.
    obs::set_enabled(false);
    let disabled = output_fingerprint(&StudyRun::execute(&cfg));
    obs::set_enabled(true);
    assert!(disabled == baseline, "telemetry off changed study output");

    // Telemetry on, different worker counts: same bytes.
    for workers in [2, 5] {
        cfg.workers = Some(workers);
        let par = output_fingerprint(&StudyRun::execute(&cfg));
        assert!(
            par == baseline,
            "study output diverged at {workers} workers with telemetry on"
        );
    }
}

#[test]
fn output_is_byte_identical_with_tracing_armed() {
    // The flight recorder (obs::trace) extends the side-channel
    // contract: arming it must not perturb a single output byte, at
    // any worker count, and disarming must return to the same bytes.
    let mut cfg = StudyConfig::quick();
    cfg.workers = Some(1);
    cfg.stage_cache = Some(0);
    obs::set_enabled(true);
    let baseline = output_fingerprint(&StudyRun::execute(&cfg));

    for workers in [1usize, 4, 8] {
        cfg.workers = Some(workers);
        obs::trace::enable(obs::trace::DEFAULT_LANE_CAPACITY);
        let traced = output_fingerprint(&StudyRun::execute(&cfg));
        let recorded: usize = obs::trace::snapshot().iter().map(|(_, evs)| evs.len()).sum();
        obs::trace::disable();
        obs::trace::clear();
        assert!(
            traced == baseline,
            "tracing changed study output at {workers} workers"
        );
        assert!(
            recorded > 0,
            "armed recorder captured nothing at {workers} workers"
        );
        let untraced = output_fingerprint(&StudyRun::execute(&cfg));
        assert!(
            untraced == baseline,
            "output diverged after disarming tracing at {workers} workers"
        );
    }
}

#[test]
fn run_populates_registry_counters() {
    // Executing a study must leave per-observatory counts and
    // generation tallies in the global registry (cumulative across the
    // process, so only lower bounds are asserted here; exact per-run
    // values are covered by the CLI manifest test in its own process).
    let mut cfg = StudyConfig::quick();
    // A stage-cache hit would (correctly) skip generation; this test is
    // about the generation-side counters, so force a real run.
    cfg.stage_cache = Some(0);
    let before = obs::metrics::counter("gen.attacks").get();
    let run = StudyRun::execute(&cfg);
    let after = obs::metrics::counter("gen.attacks").get();
    assert!(
        after >= before + run.attacks.len() as u64,
        "gen.attacks did not advance by the generated volume"
    );
    for id in ObsId::ALL {
        let c = obs::metrics::counter(&format!("observe.count.{}", id.slug()));
        assert!(
            c.get() >= run.observations(id).len() as u64,
            "observe.count.{} below this run's stream length",
            id.slug()
        );
    }
}

#[test]
fn projection_cache_hits_feed_the_registry() {
    let hits = obs::metrics::counter("project.weekly.hit");
    let run = StudyRun::execute(&StudyConfig::quick());
    let _ = run.weekly_series(ObsId::Ucsd);
    let before = hits.get();
    let _ = run.weekly_series(ObsId::Ucsd);
    let _ = run.weekly_series(ObsId::Ucsd);
    assert!(
        hits.get() >= before + 2,
        "memoized re-reads must count as registry cache hits"
    );
    // The per-run view stays in step: one compute, however many reads.
    assert_eq!(run.projection_stats().weekly_computed, 1);
}
