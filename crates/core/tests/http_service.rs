//! End-to-end acceptance for `ddoscovery serve` (ISSUE 10): served
//! payloads are byte-identical to CLI stdout, the service survives a
//! soak of mixed well-formed/slow/malformed/chaos-injected clients,
//! bind failures exit with the documented codes, and a corrupt stage
//! store degrades the warm boot to a recompute — never to a dead
//! server.
//!
//! Lint note: client-side sockets are fine here (rule 8 confines
//! socket IO to `crates/serve/src`), but this file must not name the
//! std monotonic-clock type (rule 2) — timing assertions ride
//! `DrainReport` and deadlines, not clocks.

use ddoscovery::{render, ChaosPlan, StudyConfig, StudyRun, StudyService};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

// ---------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------

fn roundtrip(addr: SocketAddr, raw: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw).expect("send request");
    let mut out = String::new();
    let _ = stream.read_to_string(&mut out);
    out
}

/// Split a response into (status, body). An empty response (peer gave
/// up / timed out without answering) maps to status 0.
fn parse_response(raw: &str) -> (u16, String) {
    let Some(rest) = raw.strip_prefix("HTTP/1.1 ") else {
        return (0, String::new());
    };
    let status: u16 = rest[..3].parse().expect("status code");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn cli() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ddoscovery"));
    cmd.env("DDOSCOVERY_LOG", "error");
    cmd
}

/// Spawn `ddoscovery serve` and parse its one stdout line into the
/// bound address. The child keeps running until `/admin/drain`.
fn spawn_serve(extra: &[&str]) -> (Child, SocketAddr) {
    let mut child = cli()
        .args(["serve", "--quick", "--workers", "2", "--addr", "127.0.0.1:0"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn ddoscovery serve");
    let stdout = child.stdout.take().expect("child stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read bound-address line");
    let addr: SocketAddr = line
        .trim()
        .strip_prefix("http://")
        .unwrap_or_else(|| panic!("stdout line {line:?} is not http://IP:PORT"))
        .parse()
        .expect("bound address parses");
    (child, addr)
}

fn drain_and_wait(mut child: Child, addr: SocketAddr) {
    let resp = roundtrip(addr, b"GET /admin/drain HTTP/1.1\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 200 "), "drain: {resp:?}");
    let status = child.wait().expect("serve child exits");
    assert!(status.success(), "serve must exit 0 after drain: {status:?}");
}

fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("ddoscovery-http-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cell_files(store: &Path) -> Vec<PathBuf> {
    let mut cells = Vec::new();
    for stage in ["plan", "attacks", "observations"] {
        let Ok(entries) = std::fs::read_dir(store.join(stage)) else { continue };
        for entry in entries.flatten() {
            if !entry.file_name().to_string_lossy().starts_with('.') {
                cells.push(entry.path());
            }
        }
    }
    cells
}

// ---------------------------------------------------------------------
// CLI round trips
// ---------------------------------------------------------------------

/// The tentpole byte-equality contract: `/v1/trends` from a real
/// `ddoscovery serve` child is byte-identical to `ddoscovery trends`
/// stdout for the same config — from several concurrent clients.
#[test]
fn served_trends_bytes_match_cli_stdout() {
    let trends = cli()
        .args(["trends", "--quick", "--workers", "2"])
        .output()
        .expect("run ddoscovery trends");
    assert!(trends.status.success(), "{}", String::from_utf8_lossy(&trends.stderr));
    let expected = String::from_utf8(trends.stdout).expect("utf8 table");

    let (child, addr) = spawn_serve(&[]);
    let health = roundtrip(addr, b"GET /healthz HTTP/1.1\r\n\r\n");
    assert_eq!(parse_response(&health), (200, "ok\n".to_string()));

    let clients: Vec<_> = (0..4)
        .map(|_| thread::spawn(move || roundtrip(addr, b"GET /v1/trends HTTP/1.1\r\n\r\n")))
        .collect();
    for client in clients {
        let raw = client.join().expect("client thread");
        let (status, body) = parse_response(&raw);
        assert_eq!(status, 200, "raw: {raw:?}");
        assert_eq!(body, expected, "served trends diverged from CLI stdout");
    }

    // A series CSV has the documented shape too.
    let series = roundtrip(addr, b"GET /v1/series/hopscotch?norm=1 HTTP/1.1\r\n\r\n");
    let (status, body) = parse_response(&series);
    assert_eq!(status, 200);
    assert!(body.starts_with("week,start_date,"), "csv: {body:?}");

    drain_and_wait(child, addr);
}

/// Bad `--addr` input is usage-class (exit 2); an OS refusal like
/// `EADDRINUSE` is environment-class (exit 1). Neither panics.
#[test]
fn cli_serve_bind_failures_use_documented_exit_codes() {
    let bad = cli()
        .args(["serve", "--quick", "--workers", "2", "--addr", "not-an-addr"])
        .output()
        .expect("spawn serve with bad addr");
    assert_eq!(bad.status.code(), Some(2), "stderr: {}", String::from_utf8_lossy(&bad.stderr));
    assert!(
        String::from_utf8_lossy(&bad.stderr).contains("serve.addr"),
        "stderr names the bad knob: {}",
        String::from_utf8_lossy(&bad.stderr)
    );

    let squatter = TcpListener::bind("127.0.0.1:0").expect("squat a port");
    let addr = squatter.local_addr().expect("squatter addr").to_string();
    let refused = cli()
        .args(["serve", "--quick", "--workers", "2", "--addr", &addr])
        .output()
        .expect("spawn serve against occupied port");
    assert_eq!(
        refused.status.code(),
        Some(1),
        "stderr: {}",
        String::from_utf8_lossy(&refused.stderr)
    );
}

/// Warm boot through a corrupt stage store degrades to recompute
/// (PR 8's contract), and the recovered server serves the same bytes.
#[test]
fn cli_serve_survives_a_corrupt_store() {
    let store = scratch("corrupt");
    let seed = cli()
        .args(["trends", "--quick", "--workers", "2", "--store"])
        .arg(&store)
        .output()
        .expect("seed the store");
    assert!(seed.status.success(), "{}", String::from_utf8_lossy(&seed.stderr));
    let expected = String::from_utf8(seed.stdout).expect("utf8 table");

    let cells = cell_files(&store);
    assert!(!cells.is_empty(), "seeding must write store cells");
    for path in cells {
        let mut bytes = std::fs::read(&path).expect("read cell");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, bytes).expect("corrupt cell");
    }

    let (child, addr) = spawn_serve(&["--store", store.to_str().expect("utf8 path")]);
    let (status, body) = parse_response(&roundtrip(addr, b"GET /v1/trends HTTP/1.1\r\n\r\n"));
    assert_eq!(status, 200);
    assert_eq!(body, expected, "corrupt-store boot diverged from cold stdout");
    drain_and_wait(child, addr);
    let _ = std::fs::remove_dir_all(&store);
}

// ---------------------------------------------------------------------
// Soak: mixed adversarial load against an in-process chaos-armed server
// ---------------------------------------------------------------------

const PANIC_BODY: &str = "internal error: request handler panicked\n";

/// The ISSUE 10 soak: N concurrent clients mixing well-formed, slow,
/// malformed, and oversized requests against a small chaos-armed pool.
/// Every accepted request gets a complete response or a clean 500/503;
/// well-formed payloads are byte-identical to the renderer output;
/// sheds are counted in `http.shed`; drain completes in deadline.
#[test]
fn soak_mixed_adversarial_load() {
    let cfg = StudyConfig::quick();
    let run = StudyRun::try_execute(&cfg).expect("quick config executes");
    let expected = render::trends_table(&run);
    // Chaos is armed on the service only (not the study execution):
    // roughly one in four handled requests panics at the registered
    // `http.request` site and must come back as a clean 500.
    let mut serve_cfg_study = cfg.clone();
    serve_cfg_study.chaos = Some(ChaosPlan::recoverable(0.25, 1234));
    let service = Arc::new(StudyService::new(run, &serve_cfg_study, "quick"));

    let server = serve::Server::bind(
        serve::ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 3,
            queue_depth: 2,
            read_timeout_ms: 400,
            write_timeout_ms: 1_000,
            drain_deadline_ms: 5_000,
            ..serve::ServeConfig::default()
        },
        service.clone(),
    )
    .expect("bind soak server");
    let addr = server.local_addr();
    service.attach_shutdown(server.shutdown_handle());
    let join = thread::spawn(move || server.run());

    let shed_before = obs::metrics::counter("http.shed").get();
    let panics_before = obs::metrics::counter("http.panic").get();

    // Phase 1: 25 concurrent clients, five request categories.
    let clients: Vec<_> = (0..25)
        .map(|i| {
            let expected = expected.clone();
            thread::spawn(move || {
                match i % 5 {
                    0 => {
                        let raw = roundtrip(addr, b"GET /v1/trends HTTP/1.1\r\n\r\n");
                        let (status, body) = parse_response(&raw);
                        match status {
                            200 => assert_eq!(body, expected, "trends bytes diverged"),
                            500 => assert_eq!(body, PANIC_BODY, "500 must be the clean panic body"),
                            503 => {}
                            other => panic!("trends got {other}: {raw:?}"),
                        }
                    }
                    1 => {
                        let raw = roundtrip(addr, b"GET /healthz HTTP/1.1\r\n\r\n");
                        let (status, body) = parse_response(&raw);
                        match status {
                            200 => assert_eq!(body, "ok\n"),
                            500 => assert_eq!(body, PANIC_BODY),
                            503 => {}
                            other => panic!("healthz got {other}: {raw:?}"),
                        }
                    }
                    2 => {
                        let raw = roundtrip(addr, b"BLARG GARBAGE\r\n\r\n");
                        let (status, _) = parse_response(&raw);
                        assert!(status == 400 || status == 503, "malformed got: {raw:?}");
                    }
                    3 => {
                        let huge = format!(
                            "GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
                            "z".repeat(16 * 1024)
                        );
                        let raw = roundtrip(addr, huge.as_bytes());
                        let (status, _) = parse_response(&raw);
                        assert!(status == 431 || status == 503, "oversized got: {raw:?}");
                    }
                    _ => {
                        // Slowloris: half a request line, then silence.
                        let mut stream = TcpStream::connect(addr).expect("connect slow");
                        stream.write_all(b"GET /slow HT").expect("partial head");
                        let mut out = String::new();
                        let _ = stream.read_to_string(&mut out);
                        let (status, _) = parse_response(&out);
                        assert!(
                            status == 0 || status == 408 || status == 503,
                            "slow peer got: {out:?}"
                        );
                    }
                }
            })
        })
        .collect();
    for client in clients {
        client.join().expect("soak client must not panic");
    }

    // Phase 2: deterministic shedding. Park every worker and fill the
    // queue with stalled heads, then burst past capacity.
    let stalled: Vec<TcpStream> = (0..5)
        .map(|_| {
            let mut stream = TcpStream::connect(addr).expect("connect staller");
            stream.write_all(b"GET /stall HT").expect("partial head");
            stream
        })
        .collect();
    thread::sleep(Duration::from_millis(100)); // let workers park on them
    let burst: Vec<_> = (0..6)
        .map(|_| thread::spawn(move || roundtrip(addr, b"GET /healthz HTTP/1.1\r\n\r\n")))
        .collect();
    let burst: Vec<String> = burst.into_iter().map(|b| b.join().expect("burst client")).collect();
    let shed_count = burst.iter().filter(|r| r.starts_with("HTTP/1.1 503 ")).count();
    assert!(shed_count > 0, "burst past a parked pool must shed: {burst:?}");
    for resp in burst.iter().filter(|r| r.starts_with("HTTP/1.1 503 ")) {
        assert!(resp.contains("Retry-After: 1\r\n"), "shed response: {resp:?}");
    }
    assert!(
        obs::metrics::counter("http.shed").get() - shed_before >= shed_count as u64,
        "sheds must be counted in http.shed"
    );
    drop(stalled);

    // Phase 3: the chaos schedule is deterministic per request sequence
    // number; within a bounded probe some request must draw a panic and
    // come back as the clean 500 — with the worker still alive.
    let mut saw_chaos = false;
    for _ in 0..64 {
        let (status, body) = parse_response(&roundtrip(addr, b"GET /healthz HTTP/1.1\r\n\r\n"));
        if status == 500 {
            assert_eq!(body, PANIC_BODY);
            saw_chaos = true;
            break;
        }
        assert!(status == 200 || status == 503, "probe got {status}");
    }
    assert!(saw_chaos, "chaos at p=0.25 must fire within 64 probes");
    assert!(obs::metrics::counter("http.panic").get() > panics_before);

    // Phase 4: drain over HTTP. Chaos may 500 the drain request itself;
    // retry — each attempt is a new sequence number.
    let mut drained_response = false;
    for _ in 0..32 {
        let (status, body) = parse_response(&roundtrip(addr, b"GET /admin/drain HTTP/1.1\r\n\r\n"));
        if status == 200 {
            assert_eq!(body, "draining\n");
            drained_response = true;
            break;
        }
        assert!(status == 500 || status == 503, "drain got {status}");
    }
    assert!(drained_response, "drain endpoint must eventually answer 200");
    let report = join.join().expect("server thread");
    assert!(report.drained, "drain inside the deadline: {report:?}");
    assert!(report.served > 0 && report.accepted >= report.served);
}
