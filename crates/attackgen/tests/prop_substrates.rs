//! Property-based tests for the mechanistic substrates (SAV deployment,
//! booter market, scan generation) and the trend timeline.

use attackgen::timeline::TimelineParams;
use attackgen::{
    generate_scans, BooterMarket, BooterMarketParams, SavModel, SavParams, ScanParams,
};
use netmodel::{InternetPlan, NetScale};
use proptest::prelude::*;
use simcore::{SimRng, SimTime, STUDY_WEEKS};
use std::sync::OnceLock;

fn plan() -> &'static InternetPlan {
    static PLAN: OnceLock<InternetPlan> = OnceLock::new();
    PLAN.get_or_init(|| {
        let mut rng = SimRng::new(55);
        InternetPlan::build(&NetScale::tiny(), &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SAV deployment is monotone for any parameterization, and the
    /// spoofable capacity mirrors it downward.
    #[test]
    fn sav_monotone_under_any_params(
        initial in 0.0f64..0.9,
        adoption in 0.0f64..1.0,
        resistance in 0.1f64..1.0,
        seed in any::<u64>(),
    ) {
        let params = SavParams {
            initial_deployment: initial,
            campaign_adoption: adoption,
            hoster_resistance: resistance,
            ..SavParams::default()
        };
        let model = SavModel::build(plan(), params, &SimRng::new(seed));
        let mut prev_enforcing = -1.0;
        let mut prev_capacity = 2.0;
        for w in (0..STUDY_WEEKS as i64).step_by(13) {
            let t = SimTime::from_weeks(w);
            let e = model.enforcing_fraction(t);
            let c = model.spoofable_capacity(t);
            prop_assert!((0.0..=1.0).contains(&e));
            prop_assert!((0.0..=1.0).contains(&c));
            prop_assert!(e >= prev_enforcing - 1e-12);
            prop_assert!(c <= prev_capacity + 1e-12);
            prev_enforcing = e;
            prev_capacity = c;
        }
    }

    /// The booter market conserves demand: capacity never exceeds the
    /// initial total, never goes negative, and stranded demand is
    /// eventually recaptured (late capacity near the original).
    #[test]
    fn booter_market_demand_conserved(
        population in 10usize..120,
        exponent in 0.6f64..2.0,
        migration in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let params = BooterMarketParams {
            population,
            popularity_exponent: exponent,
            customer_migration: migration,
            ..BooterMarketParams::default()
        };
        let market = BooterMarket::simulate(params, &SimRng::new(seed));
        let initial = market.capacity_at_week(0);
        for w in (0..STUDY_WEEKS as i64).step_by(7) {
            let c = market.capacity_at_week(w);
            prop_assert!(c >= 0.0);
            prop_assert!(c <= initial * 1.001, "week {w}: {c} > {initial}");
        }
        // Respawns at the default probability recapture almost all of
        // takedown #1's stranded demand before takedown #2 arrives
        // (~20 weeks later). The study *ends* 9 weeks after #2, so the
        // final week legitimately carries unrecovered stragglers —
        // assert the inter-takedown recovery instead.
        let before_second = market.capacity_at_week(market.takedown_weeks[1] - 1);
        prop_assert!(
            before_second > 0.85 * initial,
            "capacity {before_second} of {initial} before takedown #2"
        );
    }

    /// Scan generation scales with the configured rate and respects the
    /// amp/generic mix.
    #[test]
    fn scan_population_scales(rate in 0.5f64..12.0, amp in 0.0f64..=1.0, seed in any::<u64>()) {
        let scans = generate_scans(
            &ScanParams { campaigns_per_day: rate, amp_fraction: amp },
            &SimRng::new(seed),
        );
        let expected = rate * simcore::STUDY_DAYS as f64;
        let n = scans.len() as f64;
        prop_assert!((n - expected).abs() < 5.0 * expected.sqrt() + 10.0,
            "n {n} vs expected {expected}");
        if !scans.is_empty() {
            let amp_n = scans.iter().filter(|s| s.vector.is_some()).count() as f64;
            let share = amp_n / n;
            prop_assert!((share - amp).abs() < 0.1 + 3.0 / n.sqrt(),
                "amp share {share} vs {amp}");
        }
    }

    /// The timeline's weekly rates are positive, finite, and respond
    /// monotonically to their base parameters.
    #[test]
    fn timeline_rates_well_formed(
        dp_base in 10.0f64..5_000.0,
        ra_base in 10.0f64..5_000.0,
        week in 0i64..235,
    ) {
        let p = TimelineParams {
            dp_base_per_week: dp_base,
            ra_base_per_week: ra_base,
            ..TimelineParams::default()
        };
        let t = SimTime::from_weeks(week);
        for class in [
            attackgen::AttackClass::DirectPathSpoofed,
            attackgen::AttackClass::DirectPathNonSpoofed,
            attackgen::AttackClass::ReflectionAmplification,
        ] {
            let r = p.weekly_rate(class, t);
            prop_assert!(r.is_finite() && r > 0.0);
        }
        // Doubling the base doubles the rate (linearity in the base).
        let doubled = TimelineParams {
            ra_base_per_week: ra_base * 2.0,
            ..p.clone()
        };
        let a = p.weekly_rate(attackgen::AttackClass::ReflectionAmplification, t);
        let b = doubled.weekly_rate(attackgen::AttackClass::ReflectionAmplification, t);
        prop_assert!((b / a - 2.0).abs() < 1e-9);
    }

    /// Vector mixes are valid distributions at every instant.
    #[test]
    fn vector_mix_valid(week in 0i64..235) {
        let p = TimelineParams::default();
        let mix = p.vector_mix(SimTime::from_weeks(week));
        let total: f64 = mix.iter().map(|(_, w)| w).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(mix.iter().all(|(_, w)| (0.0..=1.0).contains(w)));
    }
}
