//! Per-AS source-address-validation (SAV) deployment and the Spoofer
//! measurement project (§2.3, §9).
//!
//! The macro timeline compresses the 2021–22 anti-spoofing push into a
//! single multiplier. This module provides the mechanistic substrate
//! underneath it: each AS either enforces SAV (its hosts cannot emit
//! spoofed packets) or does not, deployment spreads over time, and the
//! *spoofable capacity* of the Internet — the share of attack-origin
//! weight in non-enforcing networks — is what actually declines.
//!
//! On top sits a model of CAIDA's **Spoofer project** (§2.3: "relies on
//! users to download software … this volunteer crowdsourced approach
//! yields limited measurement coverage"): a crowdsourced client panel
//! tests a small, biased sample of networks each quarter and estimates
//! coverage — letting us study the estimation error the paper worries
//! about (§9 "Measurement of spoofing").

use netmodel::{AsKind, Asn, InternetPlan};
use serde::{Deserialize, Serialize};
use simcore::{Date, SimRng, SimTime};

/// Parameters of the deployment process.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SavParams {
    /// Fraction of ASes already enforcing SAV at study start (BCP 38 is
    /// decades old; many networks complied long ago).
    pub initial_deployment: f64,
    /// Fraction of the *remaining* non-enforcing ASes that deploy during
    /// the 2021–22 industry push.
    pub campaign_adoption: f64,
    /// Campaign window (matches §2.3's "concerted effort since 2021").
    pub campaign_start: Date,
    pub campaign_end: Date,
    /// Relative reluctance of hosters to deploy (filtering customer
    /// traffic is harder when customers are the traffic).
    pub hoster_resistance: f64,
}

impl Default for SavParams {
    fn default() -> Self {
        SavParams {
            initial_deployment: 0.42,
            campaign_adoption: 0.55,
            campaign_start: Date::new(2021, 2, 1),
            campaign_end: Date::new(2022, 12, 1),
            hoster_resistance: 0.5,
        }
    }
}

/// One AS's SAV state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SavState {
    pub asn: Asn,
    /// Weight of this AS as an attack *origin* (attacker infrastructure
    /// concentrates in hosters).
    pub origin_weight: f64,
    /// `None` ⇒ never deploys inside the study; `Some(t)` ⇒ enforcing
    /// from `t` on.
    pub enforces_from: Option<SimTime>,
}

impl SavState {
    pub fn enforcing_at(&self, t: SimTime) -> bool {
        self.enforces_from.map(|from| t >= from).unwrap_or(false)
    }
}

/// The deployment model over the whole AS population.
#[derive(Debug, Clone)]
pub struct SavModel {
    pub params: SavParams,
    states: Vec<SavState>,
    total_weight: f64,
}

impl SavModel {
    /// Build deterministic per-AS deployment from the plan.
    pub fn build(plan: &InternetPlan, params: SavParams, rng: &SimRng) -> Self {
        let mut rng = rng.fork_named("sav-deployment");
        let campaign_start = params.campaign_start.to_sim_time();
        let campaign_len =
            params.campaign_end.to_sim_time().0 - campaign_start.0;
        let mut states = Vec::new();
        for rec in plan.registry.iter() {
            if rec.kind == AsKind::Research {
                continue;
            }
            // Attack origin weight: hosters and ISPs house booter
            // infrastructure; weight loosely follows address space.
            let kind_factor = match rec.kind {
                AsKind::Hoster => 3.0,
                AsKind::Isp => 1.5,
                AsKind::Cdn => 0.3,
                AsKind::Business => 0.5,
                AsKind::Research => 0.0,
            };
            let origin_weight = kind_factor * (rec.address_count() as f64).sqrt();
            let initial_p = match rec.kind {
                AsKind::Hoster => params.initial_deployment * params.hoster_resistance,
                _ => params.initial_deployment,
            };
            let enforces_from = if rng.chance(initial_p) {
                Some(simcore::STUDY_START)
            } else {
                let adopt_p = match rec.kind {
                    AsKind::Hoster => params.campaign_adoption * params.hoster_resistance,
                    _ => params.campaign_adoption,
                };
                if rng.chance(adopt_p) {
                    // Adoption instant spread over the campaign window,
                    // front-weighted (early movers).
                    let frac = rng.f64().powf(0.8);
                    Some(campaign_start.plus_secs((frac * campaign_len as f64) as i64))
                } else {
                    None
                }
            };
            states.push(SavState {
                asn: rec.asn,
                origin_weight,
                enforces_from,
            });
        }
        let total_weight = states.iter().map(|s| s.origin_weight).sum();
        SavModel {
            params,
            states,
            total_weight,
        }
    }

    pub fn as_count(&self) -> usize {
        self.states.len()
    }

    pub fn states(&self) -> &[SavState] {
        &self.states
    }

    /// Fraction of ASes enforcing SAV at `t` (unweighted — what an
    /// auditor counting networks would report).
    pub fn enforcing_fraction(&self, t: SimTime) -> f64 {
        let n = self.states.iter().filter(|s| s.enforcing_at(t)).count();
        n as f64 / self.states.len().max(1) as f64
    }

    /// Fraction of attack-origin *capacity* still able to spoof at `t`
    /// (weighted — what actually drives spoofed-attack volume).
    pub fn spoofable_capacity(&self, t: SimTime) -> f64 {
        let spoofable: f64 = self
            .states
            .iter()
            .filter(|s| !s.enforcing_at(t))
            .map(|s| s.origin_weight)
            .sum();
        spoofable / self.total_weight.max(1e-12)
    }

    /// The macro multiplier this substrate induces: spoofable capacity
    /// normalized to its value at study start. This is the mechanistic
    /// counterpart of `TimelineParams::sav_multiplier`; the
    /// `sav_substrate_matches_macro_curve` test asserts they agree.
    pub fn induced_multiplier(&self, t: SimTime) -> f64 {
        self.spoofable_capacity(t) / self.spoofable_capacity(simcore::STUDY_START)
    }
}

/// The crowdsourced Spoofer measurement panel.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpooferPanel {
    /// Networks tested per quarter (the project's limited coverage).
    pub tests_per_quarter: usize,
    /// Sampling bias toward eyeball ISPs (volunteers run the client at
    /// home; hosters are almost never measured from inside).
    pub isp_bias: f64,
}

impl Default for SpooferPanel {
    fn default() -> Self {
        SpooferPanel {
            tests_per_quarter: 25,
            isp_bias: 3.0,
        }
    }
}

/// One quarter's crowdsourced estimate.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SpooferEstimate {
    pub quarter: i64,
    pub tested: usize,
    /// Estimated fraction of networks enforcing SAV.
    pub estimated_enforcing: f64,
    /// Ground truth over the same instant (for error analysis).
    pub true_enforcing: f64,
}

impl SpooferPanel {
    /// Run the panel across the study: each quarter, sample networks
    /// (ISP-biased) and test them.
    pub fn run(
        &self,
        model: &SavModel,
        plan: &InternetPlan,
        rng: &SimRng,
    ) -> Vec<SpooferEstimate> {
        let mut rng = rng.fork_named("spoofer-panel");
        // Sampling weights: ISPs over-represented.
        let weights: Vec<f64> = model
            .states()
            .iter()
            .map(|s| {
                let kind = plan.registry.get(s.asn).map(|r| r.kind);
                if kind == Some(AsKind::Isp) {
                    self.isp_bias
                } else {
                    1.0
                }
            })
            .collect();
        let mut out = Vec::new();
        for quarter in 0..18i64 {
            // Mid-quarter instant.
            let t = SimTime::from_weeks(quarter * 13 + 6);
            let mut enforcing = 0usize;
            for _ in 0..self.tests_per_quarter {
                let idx = rng.weighted_index(&weights);
                if model.states()[idx].enforcing_at(t) {
                    enforcing += 1;
                }
            }
            out.push(SpooferEstimate {
                quarter,
                tested: self.tests_per_quarter,
                estimated_enforcing: enforcing as f64 / self.tests_per_quarter as f64,
                true_enforcing: model.enforcing_fraction(t),
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::TimelineParams;
    use netmodel::NetScale;

    fn model() -> (InternetPlan, SavModel) {
        let mut rng = SimRng::new(42);
        let plan = InternetPlan::build(&NetScale::default(), &mut rng);
        let model = SavModel::build(&plan, SavParams::default(), &SimRng::new(7));
        (plan, model)
    }

    fn t(y: i32, m: u8) -> SimTime {
        Date::new(y, m, 15).to_sim_time()
    }

    #[test]
    fn deployment_monotone_over_time() {
        let (_, m) = model();
        let mut prev = 0.0;
        for w in (0..simcore::STUDY_WEEKS as i64).step_by(4) {
            let f = m.enforcing_fraction(SimTime::from_weeks(w));
            assert!(f >= prev - 1e-12, "deployment regressed at week {w}");
            prev = f;
        }
    }

    #[test]
    fn campaign_window_shapes_adoption() {
        let (_, m) = model();
        let before = m.enforcing_fraction(t(2020, 6));
        let start = m.enforcing_fraction(t(2021, 2));
        let after = m.enforcing_fraction(t(2023, 3));
        assert!((before - start).abs() < 0.02, "no adoption before campaign");
        assert!(after > before + 0.2, "campaign should add >20pp coverage");
    }

    #[test]
    fn spoofable_capacity_declines() {
        let (_, m) = model();
        let early = m.spoofable_capacity(t(2019, 3));
        let late = m.spoofable_capacity(t(2023, 3));
        assert!(late < early);
        assert!(early <= 1.0 && late > 0.0);
    }

    #[test]
    fn hosters_lag_in_deployment() {
        let (plan, m) = model();
        let late = t(2023, 5);
        let frac_of_kind = |kind: AsKind| {
            let (n, e) = m
                .states()
                .iter()
                .filter(|s| plan.registry.get(s.asn).map(|r| r.kind) == Some(kind))
                .fold((0usize, 0usize), |(n, e), s| {
                    (n + 1, e + s.enforcing_at(late) as usize)
                });
            e as f64 / n.max(1) as f64
        };
        assert!(
            frac_of_kind(AsKind::Hoster) < frac_of_kind(AsKind::Isp),
            "hosters should lag ISPs"
        );
    }

    #[test]
    fn sav_substrate_matches_macro_curve() {
        // The mechanistic substrate reproduces the macro multiplier the
        // timeline uses, within ±0.12 across the study.
        let (_, m) = model();
        let macro_curve = TimelineParams::default();
        for w in (0..simcore::STUDY_WEEKS as i64).step_by(8) {
            let t = SimTime::from_weeks(w);
            let mech = m.induced_multiplier(t);
            let mac = macro_curve.sav_multiplier(t);
            assert!(
                (mech - mac).abs() < 0.12,
                "week {w}: mechanistic {mech:.3} vs macro {mac:.3}"
            );
        }
    }

    #[test]
    fn induced_multiplier_starts_at_one() {
        let (_, m) = model();
        assert!((m.induced_multiplier(simcore::STUDY_START) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spoofer_panel_tracks_truth_with_noise() {
        let (plan, m) = model();
        let panel = SpooferPanel::default();
        let estimates = panel.run(&m, &plan, &SimRng::new(3));
        assert_eq!(estimates.len(), 18);
        // The estimate tracks the trend but with sampling noise; the
        // mean absolute error over quarters stays moderate while
        // individual quarters can be way off (the paper's coverage
        // complaint).
        let mae: f64 = estimates
            .iter()
            .map(|e| (e.estimated_enforcing - e.true_enforcing).abs())
            .sum::<f64>()
            / estimates.len() as f64;
        assert!(mae < 0.20, "mae {mae}");
        // Trend: last-quarter estimate above first-quarter estimate.
        assert!(
            estimates.last().unwrap().estimated_enforcing
                > estimates.first().unwrap().estimated_enforcing
        );
    }

    #[test]
    fn spoofer_small_panel_is_noisy() {
        // §2.3: "limited measurement coverage" — a 6-test panel has
        // visibly larger error than a 200-test panel.
        let (plan, m) = model();
        let err = |tests: usize, seed: u64| {
            let panel = SpooferPanel {
                tests_per_quarter: tests,
                isp_bias: 3.0,
            };
            let est = panel.run(&m, &plan, &SimRng::new(seed));
            est.iter()
                .map(|e| (e.estimated_enforcing - e.true_enforcing).abs())
                .sum::<f64>()
                / est.len() as f64
        };
        let small: f64 = (0..5).map(|s| err(6, s)).sum::<f64>() / 5.0;
        let large: f64 = (0..5).map(|s| err(200, s)).sum::<f64>() / 5.0;
        assert!(small > large, "small-panel MAE {small} vs large {large}");
    }

    #[test]
    fn deterministic_build() {
        let mut rng = SimRng::new(42);
        let plan = InternetPlan::build(&NetScale::tiny(), &mut rng);
        let a = SavModel::build(&plan, SavParams::default(), &SimRng::new(9));
        let b = SavModel::build(&plan, SavParams::default(), &SimRng::new(9));
        assert_eq!(a.states(), b.states());
    }
}
