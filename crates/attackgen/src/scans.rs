//! Scan traffic: the reconnaissance that precedes reflection attacks
//! and the background radiation telescopes must discriminate.
//!
//! §2.2: telescopes "achieve visibility of attack preparation in the
//! form of scans for open reflectors"; honeypots "need to discern
//! scanning and testing by attackers from actual attacks" (§4). Scans
//! are *requests* (probes toward services), structurally different from
//! RSDoS *backscatter* (responses from victims) — the property the
//! telescope capture filter keys on.

use crate::packets::PacketEvent;
use netmodel::{AmpVector, Ipv4, Transport};
use serde::{Deserialize, Serialize};
use simcore::dist::poisson;
use simcore::{SimRng, SimTime, STUDY_DAYS};

/// One Internet-wide scan campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScanCampaign {
    /// Scanner source address (not spoofed — scanners need the
    /// answers).
    pub scanner: Ipv4,
    /// Service being enumerated; `None` for generic TCP port scans.
    pub vector: Option<AmpVector>,
    pub start: SimTime,
    pub duration_secs: u32,
    /// Aggregate probe rate over the whole address space.
    pub pps: f64,
    /// Probes sent per visited address (retries).
    pub probes_per_target: u8,
}

/// Scan population parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScanParams {
    /// Expected scan campaigns per day across the study (Internet-wide
    /// scanning is constant background noise).
    pub campaigns_per_day: f64,
    /// Fraction of campaigns enumerating amplification services (the
    /// rest are generic scans).
    pub amp_fraction: f64,
}

impl Default for ScanParams {
    fn default() -> Self {
        ScanParams {
            campaigns_per_day: 6.0,
            amp_fraction: 0.55,
        }
    }
}

/// Generate the study's scan campaigns.
pub fn generate_scans(params: &ScanParams, rng: &SimRng) -> Vec<ScanCampaign> {
    let mut rng = rng.fork_named("scan-campaigns");
    let mut out = Vec::new();
    for day in 0..STUDY_DAYS {
        let n = poisson(&mut rng, params.campaigns_per_day);
        for _ in 0..n {
            let vector = if rng.chance(params.amp_fraction) {
                Some(*rng.choose(&AmpVector::ALL))
            } else {
                None
            };
            out.push(ScanCampaign {
                scanner: Ipv4(rng.next_u32()),
                vector,
                start: SimTime::from_days(day)
                    .plus_secs(rng.u64_below(86_400) as i64),
                duration_secs: rng.u64_range(600, 48 * 3600) as u32,
                pps: rng.f64_range(1_000.0, 100_000.0),
                probes_per_target: rng.u64_range(1, 3) as u8,
            });
        }
    }
    out
}

/// Synthesize the probe packets a scan sends to a given set of
/// addresses (darknet sample or honeypot sensors).
///
/// Probes are *requests*: ephemeral source port, service destination
/// port — the opposite port structure of backscatter.
pub fn scan_probe_packets(
    scan: &ScanCampaign,
    targets: &[Ipv4],
    rng: &mut SimRng,
) -> Vec<PacketEvent> {
    let (dst_port, transport) = match scan.vector {
        Some(v) => (v.src_port(), Transport::Udp),
        None => (443, Transport::Tcp),
    };
    let mut out = Vec::new();
    for &target in targets {
        for _ in 0..scan.probes_per_target {
            let t = scan
                .start
                .plus_secs(rng.u64_below(scan.duration_secs.max(1) as u64) as i64);
            out.push(PacketEvent {
                time: t,
                src: scan.scanner,
                src_port: 32_768 + rng.u64_below(28_000) as u16,
                dst: target,
                dst_port,
                transport,
                size_bytes: 60,
            });
        }
    }
    out.sort_by_key(|p| p.time);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scans_deterministic_and_in_study() {
        let a = generate_scans(&ScanParams::default(), &SimRng::new(1));
        let b = generate_scans(&ScanParams::default(), &SimRng::new(1));
        assert_eq!(a, b);
        assert!(!a.is_empty());
        for s in &a {
            assert!(s.start.in_study());
            assert!(s.pps > 0.0);
            assert!((1..=3).contains(&s.probes_per_target));
        }
    }

    #[test]
    fn mix_of_amp_and_generic_scans() {
        let scans = generate_scans(&ScanParams::default(), &SimRng::new(2));
        let amp = scans.iter().filter(|s| s.vector.is_some()).count();
        let frac = amp as f64 / scans.len() as f64;
        assert!((frac - 0.55).abs() < 0.05, "amp fraction {frac}");
    }

    #[test]
    fn probes_are_requests() {
        let scan = ScanCampaign {
            scanner: Ipv4::new(45, 1, 2, 3),
            vector: Some(AmpVector::Ntp),
            start: SimTime(1000),
            duration_secs: 3600,
            pps: 10_000.0,
            probes_per_target: 2,
        };
        let targets: Vec<Ipv4> = (0..50).map(|i| Ipv4(0x2C00_0000 + i)).collect();
        let mut rng = SimRng::new(3);
        let pkts = scan_probe_packets(&scan, &targets, &mut rng);
        assert_eq!(pkts.len(), 100);
        for p in &pkts {
            assert_eq!(p.src, scan.scanner);
            assert_eq!(p.dst_port, AmpVector::Ntp.src_port());
            assert!(p.src_port >= 32_768, "probe from ephemeral port");
            assert!(p.time >= scan.start);
        }
    }

    #[test]
    fn generic_scans_probe_tcp() {
        let scan = ScanCampaign {
            scanner: Ipv4::new(45, 1, 2, 3),
            vector: None,
            start: SimTime(0),
            duration_secs: 60,
            pps: 100.0,
            probes_per_target: 1,
        };
        let mut rng = SimRng::new(4);
        let pkts = scan_probe_packets(&scan, &[Ipv4(1)], &mut rng);
        assert_eq!(pkts[0].transport, Transport::Tcp);
        assert_eq!(pkts[0].dst_port, 443);
    }
}
