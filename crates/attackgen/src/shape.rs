//! Per-attack property distributions ("shape" parameters): durations,
//! rates, carpet widths, reflector counts.
//!
//! Calibration notes (why these defaults):
//!
//! * Durations are log-normal with a median of a few minutes — industry
//!   reports repeatedly state "most attacks under 10 min" (§3).
//! * Packet rates are Pareto (heavy-tailed): most attacks are small,
//!   a few are enormous. The tail exponent ≈ 1.1 reproduces the
//!   telescope-size asymmetry of §6.1 — mid-size attacks clear UCSD's
//!   detection thresholds but fall below ORION's effective sensitivity
//!   (0.026 vs 0.60 Mbps minimum detectable rate, §5).
//! * Reflector counts are log-normal relative to per-vector pool sizes,
//!   sized so honeypot platforms are selected into roughly half of all
//!   reflection attacks (Fig. 7: Hopscotch and AmpPot each saw ≈48 % of
//!   all targets).

use serde::{Deserialize, Serialize};
use simcore::dist::{log_normal, pareto};
use simcore::SimRng;

/// Distribution parameters for individual attack properties.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShapeParams {
    /// Median attack duration in seconds.
    pub duration_median_secs: f64,
    /// Log-normal sigma of the duration.
    pub duration_sigma: f64,
    /// Minimum / maximum attack duration in seconds.
    pub duration_min_secs: u32,
    pub duration_max_secs: u32,
    /// Pareto scale (minimum packets-per-second of an attack).
    pub pps_min: f64,
    /// Pareto tail exponent of attack pps.
    pub pps_alpha: f64,
    /// Cap on attack pps.
    pub pps_max: f64,
    /// Mean bytes per attack packet (converts pps to bps).
    pub bytes_per_packet: f64,
    /// Probability that a reflection attack carpet-bombs a block.
    pub carpet_probability: f64,
    /// Carpet width range (number of targeted addresses).
    pub carpet_min_targets: u32,
    pub carpet_max_targets: u32,
    /// Median number of reflectors abused per reflection attack.
    pub reflector_median: f64,
    pub reflector_sigma: f64,
    /// Probability that an attack is accompanied by an attack of the
    /// *other* class on the same target (multi-vector attacks; drives
    /// the 1.57 % multi-type target share of §7.1).
    pub multi_class_probability: f64,
    /// Probability that a spoofed attack rotates sources over only part
    /// of the address space (§6.1 reasons (ii)/(iii)).
    pub partial_spoof_probability: f64,
    /// Range of the partial spoof-space fraction.
    pub partial_spoof_min: f64,
    pub partial_spoof_max: f64,
}

impl Default for ShapeParams {
    fn default() -> Self {
        ShapeParams {
            duration_median_secs: 300.0,
            duration_sigma: 1.1,
            duration_min_secs: 30,
            duration_max_secs: 48 * 3600,
            pps_min: 1000.0,
            pps_alpha: 1.15,
            pps_max: 5.0e7,
            bytes_per_packet: 420.0,
            carpet_probability: 0.03,
            carpet_min_targets: 8,
            carpet_max_targets: 64,
            reflector_median: 4000.0,
            reflector_sigma: 1.0,
            multi_class_probability: 0.04,
            partial_spoof_probability: 0.30,
            partial_spoof_min: 0.15,
            partial_spoof_max: 0.90,
        }
    }
}

impl ShapeParams {
    /// Sample an attack duration in seconds.
    pub fn sample_duration(&self, rng: &mut SimRng) -> u32 {
        let d = log_normal(rng, self.duration_median_secs.ln(), self.duration_sigma);
        (d as u32).clamp(self.duration_min_secs, self.duration_max_secs)
    }

    /// Sample an aggregate packet rate (pps).
    pub fn sample_pps(&self, rng: &mut SimRng) -> f64 {
        pareto(rng, self.pps_min, self.pps_alpha).min(self.pps_max)
    }

    /// Convert a packet rate to a bit rate.
    pub fn pps_to_bps(&self, pps: f64) -> f64 {
        pps * self.bytes_per_packet * 8.0
    }

    /// Sample a carpet width (number of target addresses).
    pub fn sample_carpet_width(&self, rng: &mut SimRng) -> u32 {
        rng.u64_range(self.carpet_min_targets as u64, self.carpet_max_targets as u64) as u32
    }

    /// Sample the number of reflectors abused, capped by the pool size.
    /// Tiny pools (fewer than the 10-reflector floor) cap the draw at
    /// the whole pool instead of panicking on an inverted clamp.
    pub fn sample_reflector_count(&self, pool: u64, rng: &mut SimRng) -> u32 {
        let cap = pool.max(1);
        let k = log_normal(rng, self.reflector_median.ln(), self.reflector_sigma);
        (k as u64).clamp(cap.min(10), cap) as u32
    }

    /// Sample the spoof-space fraction for a spoofed attack.
    pub fn sample_spoof_space(&self, rng: &mut SimRng) -> f64 {
        if rng.chance(self.partial_spoof_probability) {
            rng.f64_range(self.partial_spoof_min, self.partial_spoof_max)
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(0xBEEF)
    }

    #[test]
    fn durations_bounded_and_mostly_short() {
        let p = ShapeParams::default();
        let mut r = rng();
        let samples: Vec<u32> = (0..20_000).map(|_| p.sample_duration(&mut r)).collect();
        assert!(samples.iter().all(|&d| (30..=48 * 3600).contains(&d)));
        // "most attacks under 10 min"
        let short = samples.iter().filter(|&&d| d < 600).count();
        assert!(short as f64 / samples.len() as f64 > 0.6);
    }

    #[test]
    fn pps_heavy_tail_but_capped() {
        let p = ShapeParams::default();
        let mut r = rng();
        let samples: Vec<f64> = (0..50_000).map(|_| p.sample_pps(&mut r)).collect();
        assert!(samples.iter().all(|&x| x >= p.pps_min && x <= p.pps_max));
        // Heavy tail: the max dwarfs the median.
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        assert!(sorted[sorted.len() - 1] > 100.0 * median);
    }

    #[test]
    fn bps_conversion() {
        let p = ShapeParams::default();
        assert_eq!(p.pps_to_bps(1000.0), 1000.0 * 420.0 * 8.0);
    }

    #[test]
    fn carpet_width_in_range() {
        let p = ShapeParams::default();
        let mut r = rng();
        for _ in 0..1000 {
            let w = p.sample_carpet_width(&mut r);
            assert!((8..=96).contains(&w));
        }
    }

    #[test]
    fn reflector_count_capped_by_pool() {
        let p = ShapeParams::default();
        let mut r = rng();
        for _ in 0..1000 {
            let k = p.sample_reflector_count(500, &mut r);
            assert!((10..=500).contains(&k));
        }
        // Large pool: should see values above 500 sometimes.
        let any_large = (0..1000).any(|_| p.sample_reflector_count(1_000_000, &mut r) > 500);
        assert!(any_large);
    }

    #[test]
    fn spoof_space_full_or_partial() {
        let p = ShapeParams::default();
        let mut r = rng();
        let samples: Vec<f64> = (0..10_000).map(|_| p.sample_spoof_space(&mut r)).collect();
        let full = samples.iter().filter(|&&f| f == 1.0).count() as f64;
        let frac_full = full / samples.len() as f64;
        assert!((frac_full - 0.7).abs() < 0.05, "full fraction {frac_full}");
        assert!(samples
            .iter()
            .all(|&f| f == 1.0 || (0.15..=0.90).contains(&f)));
    }
}
