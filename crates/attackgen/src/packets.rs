//! Packet-level synthesis: turn an [`Attack`] into the concrete packet
//! streams each observatory type would capture.
//!
//! This is the *packet-level fidelity* path (DESIGN.md §1): it exists so
//! the detector implementations (Corsaro RSDoS, honeypot flow
//! aggregation, IXP classification) can be exercised against realistic
//! input and cross-validated against the fast event-level visibility
//! models. Macro runs over the full 4.5 years use the event-level path;
//! generating every packet of every attack would be pointless work.

use crate::attack::{Attack, AttackClass, AttackVector};
use netmodel::{Ipv4, TelescopePlan, Transport};
use serde::{Deserialize, Serialize};
use simcore::dist::{binomial, poisson};
use simcore::{SimRng, SimTime};

/// One captured packet (the fields every detector in the workspace keys
/// on; payload is irrelevant to all of the paper's methodologies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketEvent {
    pub time: SimTime,
    pub src: Ipv4,
    pub src_port: u16,
    pub dst: Ipv4,
    pub dst_port: u16,
    pub transport: Transport,
    pub size_bytes: u32,
}

/// Fraction of direct-path attack packets the victim actually answers
/// (backscatter response rate): hosts under attack drop, rate-limit, or
/// get filtered.
pub const BACKSCATTER_RESPONSE_RATE: f64 = 0.8;

/// Derive a stable ephemeral source port for an attack (booters commonly
/// fix the spoofed source port per attack run).
pub fn attack_ephemeral_port(attack: &Attack) -> u16 {
    49_152 + (attack.id.0 % 16_384) as u16
}

/// Safety cap on synthesized packets per attack. A Pareto-tail monster
/// (tens of Mpps for hours) would otherwise materialize billions of
/// events; any flow that large clears every detector threshold within
/// its first sliver, so truncating the synthesis is verdict-neutral.
pub const MAX_SYNTH_PACKETS: u64 = 2_000_000;

/// Synthesize the backscatter packets a telescope would capture from a
/// randomly-spoofed direct-path attack.
///
/// Physics (§5): the victim answers spoofed sources; a telescope
/// covering fraction `c` of the spoofed space receives ≈ `c` of all
/// responses. If the attacker rotates over only a fraction `f < 1` of
/// the space (§6.1 reasons (ii)/(iii)), the telescope is inside the
/// rotated range with probability `f`, and — if inside — receives a
/// correspondingly denser share `c / f`.
pub fn backscatter_packets(
    attack: &Attack,
    telescope: &TelescopePlan,
    rng: &mut SimRng,
) -> Vec<PacketEvent> {
    if attack.class != AttackClass::DirectPathSpoofed {
        return Vec::new();
    }
    let f = attack.spoof_space_fraction;
    if f <= 0.0 || !rng.chance(f) {
        return Vec::new();
    }
    let density = (telescope.coverage() / f).min(1.0);
    let responses = attack.total_packets() * BACKSCATTER_RESPONSE_RATE;
    let n = binomial(rng, responses as u64, density).min(MAX_SYNTH_PACKETS);
    let (transport, src_port) = match attack.vector {
        AttackVector::SynFlood => (Transport::Tcp, 80u16), // SYN-ACK / RST from the service
        AttackVector::UdpFlood => (Transport::Icmp, 0),    // ICMP port unreachable
        _ => (Transport::Icmp, 0),                         // ICMP echo reply etc.
    };
    let victim = attack.primary_target();
    let mut out = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let t = attack
            .start
            .plus_secs(rng.u64_below(attack.duration_secs.max(1) as u64) as i64);
        // Uniform landing spot inside the darknet.
        let total: u64 = telescope.prefixes.iter().map(|p| p.size()).sum();
        let mut i = rng.u64_below(total);
        let mut dst = telescope.prefixes[0].base();
        for p in &telescope.prefixes {
            if i < p.size() {
                dst = p.nth(i);
                break;
            }
            i -= p.size();
        }
        out.push(PacketEvent {
            time: t,
            src: victim,
            src_port,
            dst,
            dst_port: attack_ephemeral_port(attack),
            transport,
            size_bytes: 60,
        });
    }
    out.sort_by_key(|p| p.time);
    out
}

/// Synthesize the amplification *requests* arriving at one honeypot
/// sensor that the attacker selected as a reflector.
///
/// Request rate per reflector ≈ aggregate attack pps / reflector count
/// (each request elicits roughly one amplified response packet; the
/// amplification is in bytes).
pub fn sensor_request_packets(
    attack: &Attack,
    sensor: Ipv4,
    rng: &mut SimRng,
) -> Vec<PacketEvent> {
    let Some(refl) = attack.reflectors else {
        return Vec::new();
    };
    let per_sensor_pps = attack.pps / refl.reflector_count.max(1) as f64;
    let expected = per_sensor_pps * attack.duration_secs as f64;
    let n = poisson(rng, expected).min(MAX_SYNTH_PACKETS);
    let mut out = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let t = attack
            .start
            .plus_secs(rng.u64_below(attack.duration_secs.max(1) as u64) as i64);
        // For a carpet attack the spoofed source rotates over the
        // carpet's addresses.
        let src = attack.targets[rng.usize_below(attack.targets.len())];
        out.push(PacketEvent {
            time: t,
            src,
            src_port: attack_ephemeral_port(attack),
            dst: sensor,
            dst_port: refl.vector.src_port(),
            transport: Transport::Udp,
            size_bytes: 64,
        });
    }
    out.sort_by_key(|p| p.time);
    out
}

/// Synthesize a sample of the traffic arriving *at the victim*
/// (what an on-path flow monitor sees). Returns at most `max_packets`
/// packets, sampled uniformly over the attack.
pub fn victim_traffic_sample(
    attack: &Attack,
    max_packets: usize,
    rng: &mut SimRng,
) -> Vec<PacketEvent> {
    let total = attack.total_packets();
    let n = (total as usize).min(max_packets);
    let victim = attack.primary_target();
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let t = attack
            .start
            .plus_secs(rng.u64_below(attack.duration_secs.max(1) as u64) as i64);
        let (src, src_port, transport) = match (attack.class, attack.vector.amp_vector()) {
            // Reflected responses: source port = the abused service.
            (_, Some(v)) => (Ipv4(rng.next_u32()), v.src_port(), Transport::Udp),
            // Spoofed direct path: random sources.
            (AttackClass::DirectPathSpoofed, None) => (
                Ipv4(rng.next_u32()),
                (1024 + rng.u64_below(60_000) as u16),
                attack.vector.transport(),
            ),
            // Non-spoofed: a bounded botnet population.
            _ => (
                Ipv4(0xC0_00_00_00 | rng.u64_below(50_000) as u32),
                (1024 + rng.u64_below(60_000) as u16),
                attack.vector.transport(),
            ),
        };
        let size = attack
            .vector
            .amp_vector()
            .map(|v| v.response_bytes())
            .unwrap_or(420);
        out.push(PacketEvent {
            time: t,
            src,
            src_port,
            dst: victim,
            dst_port: if attack.vector == AttackVector::HttpFlood { 443 } else { 80 },
            transport,
            size_bytes: size,
        });
    }
    out.sort_by_key(|p| p.time);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::{AttackId, ReflectorUse};
    use netmodel::{AmpVector, Asn};

    fn telescope() -> TelescopePlan {
        TelescopePlan {
            name: "test-nt".into(),
            asn: Asn(1),
            prefixes: vec!["44.0.0.0/10".parse().unwrap()],
        }
    }

    fn rsdos_attack(pps: f64, duration: u32) -> Attack {
        Attack {
            id: AttackId(7),
            class: AttackClass::DirectPathSpoofed,
            vector: AttackVector::SynFlood,
            start: SimTime(1000),
            duration_secs: duration,
            targets: vec![Ipv4::new(93, 184, 216, 34)],
            target_asn: Asn(100),
            pps,
            bps: pps * 500.0 * 8.0,
            reflectors: None,
            spoof_space_fraction: 1.0,
            campaign: None,
        }
    }

    fn ra_attack() -> Attack {
        Attack {
            id: AttackId(8),
            class: AttackClass::ReflectionAmplification,
            vector: AttackVector::Amplification(AmpVector::Ntp),
            start: SimTime(5000),
            duration_secs: 600,
            targets: vec![Ipv4::new(203, 0, 4, 4)],
            target_asn: Asn(200),
            pps: 60_000.0,
            bps: 1e9,
            reflectors: Some(ReflectorUse {
                vector: AmpVector::Ntp,
                reflector_count: 600,
            }),
            spoof_space_fraction: 0.0,
            campaign: None,
        }
    }

    #[test]
    fn backscatter_count_matches_coverage() {
        let tele = telescope();
        let attack = rsdos_attack(100_000.0, 300);
        let mut rng = SimRng::new(1);
        let pkts = backscatter_packets(&attack, &tele, &mut rng);
        let expected = attack.total_packets()
            * BACKSCATTER_RESPONSE_RATE
            * tele.coverage();
        let got = pkts.len() as f64;
        assert!(
            (got - expected).abs() < expected * 0.1,
            "expected ≈{expected}, got {got}"
        );
    }

    #[test]
    fn backscatter_fields_sane() {
        let tele = telescope();
        let attack = rsdos_attack(50_000.0, 120);
        let mut rng = SimRng::new(2);
        let pkts = backscatter_packets(&attack, &tele, &mut rng);
        assert!(!pkts.is_empty());
        for p in &pkts {
            assert_eq!(p.src, attack.primary_target());
            assert!(tele.contains(p.dst), "{} not in darknet", p.dst);
            assert!(p.time >= attack.start && p.time < attack.end());
            assert_eq!(p.transport, Transport::Tcp);
        }
        // Sorted by time.
        for w in pkts.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }

    #[test]
    fn backscatter_only_for_spoofed_dp() {
        let tele = telescope();
        let mut rng = SimRng::new(3);
        let pkts = backscatter_packets(&ra_attack(), &tele, &mut rng);
        assert!(pkts.is_empty());
        let mut nonspoofed = rsdos_attack(50_000.0, 120);
        nonspoofed.class = AttackClass::DirectPathNonSpoofed;
        nonspoofed.spoof_space_fraction = 0.0;
        assert!(backscatter_packets(&nonspoofed, &tele, &mut rng).is_empty());
    }

    #[test]
    fn partial_spoof_sometimes_misses_telescope() {
        let tele = telescope();
        let mut attack = rsdos_attack(100_000.0, 300);
        attack.spoof_space_fraction = 0.3;
        let mut rng = SimRng::new(4);
        let mut missed = 0;
        let mut hit_counts = Vec::new();
        for _ in 0..200 {
            let pkts = backscatter_packets(&attack, &tele, &mut rng);
            if pkts.is_empty() {
                missed += 1;
            } else {
                hit_counts.push(pkts.len() as f64);
            }
        }
        // ~70% of runs the telescope is outside the rotated range.
        assert!((100..=180).contains(&missed), "missed {missed}");
        // When hit, density is boosted by 1/f.
        let expected_hit = attack.total_packets() * BACKSCATTER_RESPONSE_RATE
            * tele.coverage()
            / 0.3;
        let mean_hit: f64 = hit_counts.iter().sum::<f64>() / hit_counts.len() as f64;
        assert!(
            (mean_hit - expected_hit).abs() < expected_hit * 0.15,
            "expected ≈{expected_hit}, got {mean_hit}"
        );
    }

    #[test]
    fn sensor_requests_rate_split_across_reflectors() {
        let attack = ra_attack();
        let sensor = Ipv4::new(9, 9, 9, 9);
        let mut rng = SimRng::new(5);
        let pkts = sensor_request_packets(&attack, sensor, &mut rng);
        // 60k pps / 600 reflectors * 600 s = 60000 expected.
        let expected = 60_000.0;
        let got = pkts.len() as f64;
        assert!((got - expected).abs() < expected * 0.1, "got {got}");
        for p in pkts.iter().take(50) {
            assert_eq!(p.dst, sensor);
            assert_eq!(p.dst_port, AmpVector::Ntp.src_port());
            assert_eq!(p.src, attack.primary_target());
            assert_eq!(p.transport, Transport::Udp);
        }
    }

    #[test]
    fn sensor_requests_empty_for_dp() {
        let mut rng = SimRng::new(6);
        let pkts = sensor_request_packets(
            &rsdos_attack(10_000.0, 60),
            Ipv4::new(9, 9, 9, 9),
            &mut rng,
        );
        assert!(pkts.is_empty());
    }

    #[test]
    fn carpet_requests_rotate_sources() {
        let mut attack = ra_attack();
        attack.targets = (0..16).map(|i| Ipv4::new(203, 0, 8, i)).collect();
        let mut rng = SimRng::new(7);
        let pkts = sensor_request_packets(&attack, Ipv4::new(9, 9, 9, 9), &mut rng);
        let distinct: std::collections::HashSet<Ipv4> = pkts.iter().map(|p| p.src).collect();
        assert!(distinct.len() > 8, "only {} distinct sources", distinct.len());
    }

    #[test]
    fn victim_sample_caps_and_targets() {
        let attack = ra_attack();
        let mut rng = SimRng::new(8);
        let pkts = victim_traffic_sample(&attack, 500, &mut rng);
        assert_eq!(pkts.len(), 500);
        for p in &pkts {
            assert_eq!(p.dst, attack.primary_target());
            assert_eq!(p.src_port, AmpVector::Ntp.src_port());
            assert_eq!(p.transport, Transport::Udp);
        }
    }

    #[test]
    fn victim_sample_spoofed_sources_diverse() {
        let attack = rsdos_attack(100_000.0, 300);
        let mut rng = SimRng::new(9);
        let pkts = victim_traffic_sample(&attack, 1000, &mut rng);
        let distinct: std::collections::HashSet<Ipv4> = pkts.iter().map(|p| p.src).collect();
        assert!(distinct.len() > 990, "spoofed sources should be ~unique");
    }

    #[test]
    fn ephemeral_port_stable_and_in_range() {
        let a = ra_attack();
        assert_eq!(attack_ephemeral_port(&a), attack_ephemeral_port(&a));
        assert!(attack_ephemeral_port(&a) >= 49_152);
    }
}
