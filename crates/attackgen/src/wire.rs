//! Wire codecs for the columnar stage outputs (DESIGN.md §11).
//!
//! [`AttackColumns`] and [`ObservationColumns`] are the attack-stage
//! and observation-stage outputs the persistent stage store writes to
//! disk. They encode column-wise on top of [`netmodel::wire`]: each
//! column is a length-prefixed run of fixed-width scalars, so the
//! payload size is within a few percent of the resident columnar
//! footprint and decode is a straight refill of each `Vec`.
//!
//! Decoding is fail-safe (bounds-checked `Err`, never a panic) and
//! finishes with structural checks — equal column lengths, monotone
//! target offsets closing exactly on the arena — so a decoded value
//! upholds every invariant the columnar accessors index by.

use crate::attack::{AttackClass, AttackVector};
use crate::columns::{AttackColumns, ObservationColumns};
use netmodel::wire::{
    amp_from_tag, amp_tag, get_f64s, get_i64s, get_u32s, get_u64s, put_f64s, put_i64s, put_u32s,
    put_u64s, Reader, WireResult, Writer,
};
use netmodel::{Asn, Ipv4};

/// Stable one-byte tag of an attack class.
pub fn class_tag(c: AttackClass) -> u8 {
    match c {
        AttackClass::DirectPathSpoofed => 0,
        AttackClass::DirectPathNonSpoofed => 1,
        AttackClass::ReflectionAmplification => 2,
    }
}

pub fn class_from_tag(tag: u8) -> WireResult<AttackClass> {
    Ok(match tag {
        0 => AttackClass::DirectPathSpoofed,
        1 => AttackClass::DirectPathNonSpoofed,
        2 => AttackClass::ReflectionAmplification,
        _ => return Err(format!("unknown AttackClass tag {tag}")),
    })
}

/// Attack vectors use tags 0–3 for the direct-path vectors and
/// `4 + amp_tag` for amplification, so every `(vector)` pair fits one
/// byte.
const VECTOR_AMP_BASE: u8 = 4;

fn vector_tag(v: AttackVector) -> u8 {
    match v {
        AttackVector::SynFlood => 0,
        AttackVector::UdpFlood => 1,
        AttackVector::IcmpFlood => 2,
        AttackVector::HttpFlood => 3,
        AttackVector::Amplification(a) => VECTOR_AMP_BASE + amp_tag(a),
    }
}

fn vector_from_tag(tag: u8) -> WireResult<AttackVector> {
    Ok(match tag {
        0 => AttackVector::SynFlood,
        1 => AttackVector::UdpFlood,
        2 => AttackVector::IcmpFlood,
        3 => AttackVector::HttpFlood,
        t => AttackVector::Amplification(amp_from_tag(t - VECTOR_AMP_BASE)?),
    })
}

/// Decode a one-byte-per-row tag column in a single bounds check.
fn get_tags<T>(r: &mut Reader<'_>, from_tag: impl Fn(u8) -> WireResult<T>) -> WireResult<Vec<T>> {
    let n = r.count(1)?;
    r.raw(n)?.iter().map(|&t| from_tag(t)).collect()
}

/// Decode a `u32`-per-row newtype column in a single bounds check.
fn get_u32_wrapped<T>(r: &mut Reader<'_>, wrap: impl Fn(u32) -> T) -> WireResult<Vec<T>> {
    let n = r.count(4)?;
    let bytes = r.raw(n * 4)?;
    Ok(bytes
        .chunks_exact(4)
        .map(|c| wrap(u32::from_le_bytes(c.try_into().expect("4-byte chunk"))))
        .collect())
}

/// Check a decoded `(rows, target_offsets, target_arena)` triple: the
/// offsets column must have exactly `rows + 1` monotone entries
/// starting at 0 and closing on the arena length — the invariant every
/// `targets(i)` slice indexes by.
fn check_offsets(rows: usize, offsets: &[u32], arena_len: usize) -> WireResult<()> {
    if offsets.len() != rows + 1 {
        return Err(format!("{} offsets for {rows} rows", offsets.len()));
    }
    if offsets[0] != 0 {
        return Err(format!("offsets start at {} instead of 0", offsets[0]));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err("non-monotone target offsets".to_string());
    }
    if offsets[rows] as usize != arena_len {
        return Err(format!(
            "offsets close at {} but the arena holds {arena_len} targets",
            offsets[rows]
        ));
    }
    Ok(())
}

impl AttackColumns {
    /// Encode every column to the wire format (deterministic bytes).
    pub fn to_wire_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(self.len() * 64 + self.target_arena.len() * 4 + 64);
        put_u32s(&mut w, &self.id);
        w.u64(self.class.len() as u64);
        for &c in &self.class {
            w.u8(class_tag(c));
        }
        w.u64(self.vector.len() as u64);
        for &v in &self.vector {
            w.u8(vector_tag(v));
        }
        put_u32s(&mut w, &self.start_secs);
        put_u32s(&mut w, &self.duration_secs);
        w.u64(self.target_asn.len() as u64);
        for a in &self.target_asn {
            w.u32(a.0);
        }
        put_f64s(&mut w, &self.pps);
        put_f64s(&mut w, &self.bps);
        put_u32s(&mut w, &self.reflector_count);
        put_f64s(&mut w, &self.spoof_space_fraction);
        put_u32s(&mut w, &self.campaign);
        put_u32s(&mut w, &self.target_offsets);
        w.u64(self.target_arena.len() as u64);
        for ip in &self.target_arena {
            w.u32(ip.0);
        }
        w.into_bytes()
    }

    /// Decode a wire payload, restoring every columnar invariant or
    /// failing with `Err` (never a panic).
    pub fn from_wire_bytes(bytes: &[u8]) -> WireResult<AttackColumns> {
        let mut r = Reader::new(bytes);
        let id = get_u32s(&mut r)?;
        let class = get_tags(&mut r, class_from_tag)?;
        let vector = get_tags(&mut r, vector_from_tag)?;
        let start_secs = get_u32s(&mut r)?;
        let duration_secs = get_u32s(&mut r)?;
        let target_asn = get_u32_wrapped(&mut r, Asn)?;
        let pps = get_f64s(&mut r)?;
        let bps = get_f64s(&mut r)?;
        let reflector_count = get_u32s(&mut r)?;
        let spoof_space_fraction = get_f64s(&mut r)?;
        let campaign = get_u32s(&mut r)?;
        let target_offsets = get_u32s(&mut r)?;
        let target_arena = get_u32_wrapped(&mut r, Ipv4)?;
        r.finish()?;

        let rows = id.len();
        for (name, len) in [
            ("class", class.len()),
            ("vector", vector.len()),
            ("start_secs", start_secs.len()),
            ("duration_secs", duration_secs.len()),
            ("target_asn", target_asn.len()),
            ("pps", pps.len()),
            ("bps", bps.len()),
            ("reflector_count", reflector_count.len()),
            ("spoof_space_fraction", spoof_space_fraction.len()),
            ("campaign", campaign.len()),
        ] {
            if len != rows {
                return Err(format!("column {name} holds {len} rows, id holds {rows}"));
            }
        }
        check_offsets(rows, &target_offsets, target_arena.len())?;

        Ok(AttackColumns {
            id,
            class,
            vector,
            start_secs,
            duration_secs,
            target_asn,
            pps,
            bps,
            reflector_count,
            spoof_space_fraction,
            campaign,
            target_offsets,
            target_arena,
        })
    }
}

impl ObservationColumns {
    /// Encode every column to the wire format (deterministic bytes).
    pub fn to_wire_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(self.len() * 24 + self.target_arena.len() * 4 + 40);
        put_u64s(&mut w, &self.attack_id);
        put_i64s(&mut w, &self.start);
        put_u32s(&mut w, &self.target_offsets);
        w.u64(self.target_arena.len() as u64);
        for ip in &self.target_arena {
            w.u32(ip.0);
        }
        w.into_bytes()
    }

    /// Decode a wire payload, restoring every columnar invariant or
    /// failing with `Err` (never a panic).
    pub fn from_wire_bytes(bytes: &[u8]) -> WireResult<ObservationColumns> {
        let mut r = Reader::new(bytes);
        let attack_id = get_u64s(&mut r)?;
        let start = get_i64s(&mut r)?;
        let target_offsets = get_u32s(&mut r)?;
        let target_arena = get_u32_wrapped(&mut r, Ipv4)?;
        r.finish()?;

        let rows = attack_id.len();
        if start.len() != rows {
            return Err(format!("column start holds {} rows, attack_id holds {rows}", start.len()));
        }
        check_offsets(rows, &target_offsets, target_arena.len())?;

        Ok(ObservationColumns { attack_id, start, target_offsets, target_arena })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::{Attack, AttackId, ReflectorUse};
    use netmodel::AmpVector;
    use simcore::SimTime;

    fn sample_attacks() -> AttackColumns {
        let mut cols = AttackColumns::new();
        cols.push(&Attack {
            id: AttackId(1),
            class: AttackClass::DirectPathSpoofed,
            vector: AttackVector::SynFlood,
            start: SimTime(1000),
            duration_secs: 60,
            targets: vec![Ipv4(0x01020304)],
            target_asn: Asn(16276),
            pps: 1.5e6,
            bps: 9.9e9,
            reflectors: None,
            spoof_space_fraction: 1.0,
            campaign: None,
        });
        cols.push(&Attack {
            id: AttackId(2),
            class: AttackClass::ReflectionAmplification,
            vector: AttackVector::Amplification(AmpVector::Cldap),
            start: SimTime(5000),
            duration_secs: 600,
            targets: vec![Ipv4(0x0A0B0C01), Ipv4(0x0A0B0C02), Ipv4(0x0A0B0C03)],
            target_asn: Asn(24940),
            pps: 3.0e5,
            bps: 2.2e9,
            reflectors: Some(ReflectorUse { vector: AmpVector::Cldap, reflector_count: 512 }),
            spoof_space_fraction: 0.0,
            campaign: Some(7),
        });
        cols
    }

    fn sample_observations() -> ObservationColumns {
        let mut obs = ObservationColumns::new();
        obs.push_row(AttackId(11), SimTime(123), &[Ipv4(1), Ipv4(2)]);
        obs.push_row(AttackId(12), SimTime(456), &[Ipv4(3)]);
        obs
    }

    #[test]
    fn attack_columns_round_trip_byte_identically() {
        let cols = sample_attacks();
        let bytes = cols.to_wire_bytes();
        let back = AttackColumns::from_wire_bytes(&bytes).expect("decode");
        assert_eq!(back, cols);
        assert_eq!(back.to_wire_bytes(), bytes);
        // The decoded view surface works (offsets rebuilt correctly).
        assert_eq!(back.get(1).targets.len(), 3);
        assert_eq!(back.get(1).campaign, Some(7));
        assert_eq!(
            back.get(1).reflectors,
            Some(ReflectorUse { vector: AmpVector::Cldap, reflector_count: 512 })
        );
    }

    #[test]
    fn empty_columns_round_trip() {
        let cols = AttackColumns::new();
        let back = AttackColumns::from_wire_bytes(&cols.to_wire_bytes()).expect("decode");
        assert_eq!(back, cols);
        let obs = ObservationColumns::new();
        let back = ObservationColumns::from_wire_bytes(&obs.to_wire_bytes()).expect("decode");
        assert_eq!(back, obs);
    }

    #[test]
    fn observation_columns_round_trip_byte_identically() {
        let obs = sample_observations();
        let bytes = obs.to_wire_bytes();
        let back = ObservationColumns::from_wire_bytes(&bytes).expect("decode");
        assert_eq!(back, obs);
        assert_eq!(back.to_wire_bytes(), bytes);
    }

    #[test]
    fn decode_rejects_corruption_without_panicking() {
        let bytes = sample_attacks().to_wire_bytes();
        for cut in 0..bytes.len() {
            let _ = AttackColumns::from_wire_bytes(&bytes[..cut]);
        }
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            let _ = AttackColumns::from_wire_bytes(&bad);
        }
        let bytes = sample_observations().to_wire_bytes();
        for cut in 0..bytes.len() {
            let _ = ObservationColumns::from_wire_bytes(&bytes[..cut]);
        }
    }

    #[test]
    fn decode_rejects_structural_lies() {
        // Mismatched column lengths: drop the last class tag.
        let cols = sample_attacks();
        let mut w = Writer::new();
        w.u64(cols.id.len() as u64);
        for &v in &cols.id {
            w.u32(v);
        }
        w.u64(1); // class column claims one row for two ids
        w.u8(0);
        let err = AttackColumns::from_wire_bytes(&w.into_bytes());
        assert!(err.is_err());

        // Offsets that do not close on the arena.
        let mut obs = sample_observations();
        obs.target_offsets[2] = 99;
        let err = ObservationColumns::from_wire_bytes(&obs.to_wire_bytes());
        assert!(err.is_err(), "offsets past the arena must be rejected");
    }

    #[test]
    fn vector_tags_cover_every_variant() {
        let mut all = vec![
            AttackVector::SynFlood,
            AttackVector::UdpFlood,
            AttackVector::IcmpFlood,
            AttackVector::HttpFlood,
        ];
        all.extend(AmpVector::ALL.iter().map(|&v| AttackVector::Amplification(v)));
        for v in all {
            assert_eq!(vector_from_tag(vector_tag(v)).unwrap(), v);
        }
        assert!(vector_from_tag(VECTOR_AMP_BASE + AmpVector::ALL.len() as u8).is_err());
        for c in [
            AttackClass::DirectPathSpoofed,
            AttackClass::DirectPathNonSpoofed,
            AttackClass::ReflectionAmplification,
        ] {
            assert_eq!(class_from_tag(class_tag(c)).unwrap(), c);
        }
        assert!(class_from_tag(3).is_err());
    }
}
