//! Attack campaigns: correlated bursts of attacks against a scoped set
//! of victims.
//!
//! The paper's figures show short peaks that appear at *some*
//! observatories and not others (§6.1: "these peaks did not coincide in
//! time"; §6.2: the mid-2022 honeypot spike "not visible at the industry
//! observatories"). Campaigns are our mechanism for that: each one
//! elevates attack rates against a scope (one AS, one RIR region, or the
//! Akamai-protected prefix set) for a bounded period, so different
//! coverage footprints light up differently.

use crate::attack::{AttackClass, AttackVector};
use netmodel::{AmpVector, Asn, InternetPlan, Rir};
use serde::{Deserialize, Serialize};
use simcore::{Date, SimRng, SimTime};

/// Victim scope of a campaign.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CampaignScope {
    /// All targets inside one AS.
    SingleAs(Asn),
    /// Targets across ASes allocated by one RIR (regional campaigns,
    /// e.g. the mid-2022 SSDP carpet bombing of Brazil, Appendix I).
    Region(Rir),
    /// Targets inside Akamai-protected prefixes (drives the
    /// Akamai-unique peaks of Fig. 3(d)).
    AkamaiProtected,
    /// Targets at IXP-member ASes that are *not* Netscout customers —
    /// campaigns whose peaks light up the IXP series without moving the
    /// Netscout series (the paper's coverage-footprint divergence,
    /// §6.1).
    IxpMembersOnly,
}

/// A scheduled campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Campaign {
    pub id: u32,
    pub name: String,
    pub class: AttackClass,
    pub vector: AttackVector,
    pub scope: CampaignScope,
    pub start: SimTime,
    pub end: SimTime,
    /// Additional attacks per week while active.
    pub weekly_rate: f64,
    /// Force carpet bombing for campaign attacks.
    pub carpet: bool,
    /// Multiplier on the sampled per-attack pps (a low value keeps the
    /// campaign under industry severity thresholds — the reason the
    /// mid-2022 spike is honeypot-only).
    pub pps_scale: f64,
    /// Carpet width override (min, max targets) for campaign attacks.
    pub carpet_width: Option<(u32, u32)>,
}

impl Campaign {
    pub fn active_at(&self, t: SimTime) -> bool {
        t >= self.start && t < self.end
    }
}

fn t(y: i32, m: u8, d: u8) -> SimTime {
    Date::new(y, m, d).to_sim_time()
}

/// The hand-scheduled campaigns that anchor paper-visible events.
pub fn scripted_campaigns() -> Vec<Campaign> {
    vec![
        // Appendix I / Fig. 3(a,b): SSDP carpet bombing against Brazil in
        // mid-2022. Low per-target rate, very wide — honeypots record a
        // spike, industry severity thresholds are never met.
        Campaign {
            id: 0,
            name: "brazil-ssdp-carpet-2022".into(),
            class: AttackClass::ReflectionAmplification,
            vector: AttackVector::Amplification(AmpVector::Ssdp),
            scope: CampaignScope::Region(Rir::Lacnic),
            start: t(2022, 5, 1),
            end: t(2022, 8, 1),
            weekly_rate: 1800.0,
            carpet: true,
            pps_scale: 0.8,
            // Narrow sweeps: enough per-victim request volume that even
            // AmpPot's 100-packet flow bar catches part of the campaign
            // (both honeypots spike in Fig. 3(a)/(b)).
            carpet_width: Some((8, 16)),
        },
        // Fig. 3(d): Akamai's RA peak in 2021Q4 is "unique to Akamai" —
        // a campaign against Prolexic-protected customers.
        Campaign {
            id: 1,
            name: "akamai-ra-2021q4".into(),
            class: AttackClass::ReflectionAmplification,
            vector: AttackVector::Amplification(AmpVector::Dns),
            scope: CampaignScope::AkamaiProtected,
            start: t(2021, 10, 1),
            end: t(2021, 12, 20),
            weekly_rate: 40.0,
            carpet: false,
            pps_scale: 1.0,
            carpet_width: None,
        },
        // Fig. 2(a): ORION's largest direct-path peaks fall in 2022H1.
        // A high-rate RSDoS campaign large enough for the small
        // telescope to see clearly.
        Campaign {
            id: 2,
            name: "rsdos-surge-2022h1".into(),
            class: AttackClass::DirectPathSpoofed,
            vector: AttackVector::SynFlood,
            scope: CampaignScope::Region(Rir::RipeNcc),
            start: t(2022, 1, 10),
            end: t(2022, 6, 1),
            weekly_rate: 380.0,
            carpet: false,
            pps_scale: 3.0,
            carpet_width: None,
        },
        // Fig. 2(b): UCSD's largest peak lands in 2023Q2 — a *low-rate*
        // spoofed campaign only the large telescope can detect.
        Campaign {
            id: 3,
            name: "rsdos-lowrate-2023q2".into(),
            class: AttackClass::DirectPathSpoofed,
            vector: AttackVector::SynFlood,
            scope: CampaignScope::Region(Rir::Apnic),
            start: t(2023, 4, 1),
            end: t(2023, 6, 25),
            weekly_rate: 420.0,
            carpet: false,
            pps_scale: 0.5,
            carpet_width: None,
        },
        // Fig. 2(e): the IXP saw ≈10× jumps in 2020H1 / 2021H1 (blackholed
        // direct-path attacks at European customers).
        Campaign {
            id: 4,
            name: "ixp-dp-2020h1".into(),
            class: AttackClass::DirectPathNonSpoofed,
            vector: AttackVector::SynFlood,
            scope: CampaignScope::IxpMembersOnly,
            start: t(2020, 2, 1),
            end: t(2020, 6, 15),
            weekly_rate: 90.0,
            carpet: false,
            pps_scale: 8.0,
            carpet_width: None,
        },
        Campaign {
            id: 5,
            name: "ixp-dp-2021h1".into(),
            class: AttackClass::DirectPathNonSpoofed,
            vector: AttackVector::SynFlood,
            scope: CampaignScope::IxpMembersOnly,
            start: t(2021, 1, 15),
            end: t(2021, 6, 1),
            weekly_rate: 80.0,
            carpet: false,
            pps_scale: 8.0,
            carpet_width: None,
        },
    ]
}

/// Random filler campaigns: short, scoped bursts that generate the
/// non-coinciding small peaks every observatory shows.
pub fn random_campaigns(plan: &InternetPlan, count: usize, rng: &mut SimRng) -> Vec<Campaign> {
    let mut rng = rng.fork_named("random-campaigns");
    let asns: Vec<Asn> = plan
        .registry
        .iter()
        .filter(|r| r.target_weight > 0.0)
        .map(|r| r.asn)
        .collect();
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let class = match rng.weighted_index(&[0.30, 0.25, 0.45]) {
            0 => AttackClass::DirectPathSpoofed,
            1 => AttackClass::DirectPathNonSpoofed,
            _ => AttackClass::ReflectionAmplification,
        };
        let vector = match class {
            AttackClass::DirectPathSpoofed => AttackVector::SynFlood,
            AttackClass::DirectPathNonSpoofed => {
                if rng.chance(0.5) {
                    AttackVector::HttpFlood
                } else {
                    AttackVector::SynFlood
                }
            }
            AttackClass::ReflectionAmplification => {
                AttackVector::Amplification(*rng.choose(&AmpVector::ALL))
            }
        };
        let start_week = rng.u64_below(simcore::STUDY_WEEKS as u64 - 9) as i64;
        let weeks = rng.u64_range(2, 8) as i64;
        out.push(Campaign {
            id: 100 + i as u32,
            name: format!("burst-{i}"),
            class,
            vector,
            scope: CampaignScope::SingleAs(*rng.choose(&asns)),
            start: SimTime::from_weeks(start_week),
            end: SimTime::from_weeks(start_week + weeks),
            weekly_rate: rng.f64_range(40.0, 260.0),
            carpet: rng.chance(0.12),
            pps_scale: rng.f64_range(0.3, 3.0),
            carpet_width: None,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmodel::NetScale;

    #[test]
    fn scripted_campaigns_inside_study() {
        for c in scripted_campaigns() {
            assert!(c.start.in_study(), "{} starts outside study", c.name);
            assert!(c.start < c.end);
            assert!(SimTime(c.end.0 - 1).in_study(), "{} ends outside study", c.name);
        }
    }

    #[test]
    fn scripted_ids_unique() {
        let cs = scripted_campaigns();
        let mut ids: Vec<u32> = cs.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), cs.len());
    }

    #[test]
    fn brazil_campaign_is_carpet_and_low_rate() {
        let cs = scripted_campaigns();
        let brazil = cs.iter().find(|c| c.name.contains("brazil")).unwrap();
        assert!(brazil.carpet);
        assert!(brazil.pps_scale < 1.0);
        assert_eq!(brazil.carpet_width, Some((8, 16)));
        assert_eq!(brazil.scope, CampaignScope::Region(Rir::Lacnic));
        assert_eq!(brazil.class, AttackClass::ReflectionAmplification);
    }

    #[test]
    fn active_at_boundaries() {
        let c = &scripted_campaigns()[0];
        assert!(!c.active_at(SimTime(c.start.0 - 1)));
        assert!(c.active_at(c.start));
        assert!(c.active_at(SimTime(c.end.0 - 1)));
        assert!(!c.active_at(c.end));
    }

    #[test]
    fn random_campaigns_deterministic_and_bounded() {
        let mut rng = SimRng::new(3);
        let plan = InternetPlan::build(&NetScale::tiny(), &mut rng);
        let mut r1 = SimRng::new(11);
        let mut r2 = SimRng::new(11);
        let a = random_campaigns(&plan, 20, &mut r1);
        let b = random_campaigns(&plan, 20, &mut r2);
        assert_eq!(a.len(), 20);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.start, y.start);
        }
        for c in &a {
            assert!(c.start.in_study());
            assert!(c.end.0 <= simcore::STUDY_END.0 + simcore::time::SECS_PER_WEEK);
            assert!(c.weekly_rate > 0.0);
        }
    }

    #[test]
    fn random_campaigns_target_weighted_ases_only() {
        let mut rng = SimRng::new(3);
        let plan = InternetPlan::build(&NetScale::tiny(), &mut rng);
        let mut r = SimRng::new(11);
        for c in random_campaigns(&plan, 50, &mut r) {
            if let CampaignScope::SingleAs(asn) = c.scope {
                assert!(plan.registry.get(asn).unwrap().target_weight > 0.0);
            }
        }
    }
}
