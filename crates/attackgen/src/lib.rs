//! `attackgen` — the ground-truth DDoS attack generator.
//!
//! Produces the attack population the paper's observatories each see a
//! slice of: attack records ([`attack`]), macro trend dynamics
//! ([`timeline`]), per-attack property distributions ([`shape`]),
//! correlated campaign bursts ([`campaigns`]), the generator proper
//! ([`generator`]) and packet-level synthesis for detector validation
//! ([`packets`]).

pub mod attack;
pub mod booters;
pub mod campaigns;
pub mod columns;
pub mod generator;
pub mod observed;
pub mod packets;
pub mod sav;
pub mod scans;
pub mod shape;
pub mod timeline;
pub mod wire;

pub use attack::{Attack, AttackClass, AttackId, AttackVector, ReflectorUse};
pub use booters::{Booter, BooterMarket, BooterMarketParams};
pub use campaigns::{Campaign, CampaignScope};
pub use columns::{AttackColumns, AttackRef, ObservationColumns, ObservedRef};
pub use generator::{generate_default_study, weekly_class_counts, AttackGenerator, GenConfig};
pub use observed::{
    distinct_target_tuples, distinct_target_tuples_of, weekly_counts, ObservedAttack,
};
pub use packets::PacketEvent;
pub use sav::{SavModel, SavParams, SpooferEstimate, SpooferPanel};
pub use scans::{generate_scans, scan_probe_packets, ScanCampaign, ScanParams};
pub use shape::ShapeParams;
pub use timeline::TimelineParams;
