//! A mechanistic booter (DDoS-for-hire) market model (§2.1 "Enabling
//! platforms", §2.3/§6.2 takedowns).
//!
//! The macro timeline's takedown dips compress what is really a market
//! process: a heavy-tailed population of booter services, law
//! enforcement seizing the most popular ones on the two warrant dates
//! (2022-12-13, 2023-05-04 — 48 domains in the first action, 13 in the
//! second), and the survivors plus quickly respawned successors
//! re-absorbing the demand (§2.1: booters "after takedown often return
//! shortly on a new website"; Collier et al. [31]).
//!
//! The model is a weekly-stepped birth/death process over booter
//! services with Zipf-distributed popularity. Its *induced capacity
//! multiplier* reproduces the macro takedown curve; the
//! `booter_market_matches_macro_dip` test pins that correspondence.

use serde::{Deserialize, Serialize};
use simcore::dist::Zipf;
use simcore::time::takedown_dates;
use simcore::{SimRng, SimTime, STUDY_WEEKS};

/// Market parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BooterMarketParams {
    /// Number of booter services alive at any time (steady state).
    pub population: usize,
    /// Zipf exponent of booter popularity (a few big names carry most
    /// of the attack volume).
    pub popularity_exponent: f64,
    /// Weekly probability that a booter retires organically (operator
    /// exits, payment processor drops them, …).
    pub weekly_churn: f64,
    /// Services seized in the first / second law-enforcement action.
    pub takedown_sizes: [usize; 2],
    /// Weekly probability that a seized operator respawns under a new
    /// domain.
    pub respawn_probability: f64,
    /// Fraction of a seized service's customers who migrate to
    /// surviving booters within the takedown week (Collier et al. [31]:
    /// the market re-absorbs demand quickly). The rest wait for the
    /// respawn.
    pub customer_migration: f64,
}

impl Default for BooterMarketParams {
    fn default() -> Self {
        BooterMarketParams {
            population: 60,
            popularity_exponent: 1.1,
            weekly_churn: 0.01,
            takedown_sizes: [12, 6],
            respawn_probability: 0.35,
            customer_migration: 0.75,
        }
    }
}

/// One booter service.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Booter {
    pub id: u32,
    /// Relative share of market demand this service carries.
    pub popularity: f64,
    pub alive: bool,
    /// Demand stranded by a seizure, waiting for this operator's
    /// respawn (zero unless seized).
    pub stranded: f64,
}

/// The simulated market: weekly capacity series over the study.
#[derive(Debug, Clone)]
pub struct BooterMarket {
    pub params: BooterMarketParams,
    /// Total alive popularity per study week.
    capacity: Vec<f64>,
    /// Number of alive services per week.
    alive_counts: Vec<usize>,
    /// Takedown weeks (for reporting).
    pub takedown_weeks: [i64; 2],
}

impl BooterMarket {
    /// Simulate the market across the study window.
    pub fn simulate(params: BooterMarketParams, rng: &SimRng) -> Self {
        let mut rng = rng.fork_named("booter-market");
        let zipf = Zipf::new(params.population, params.popularity_exponent);
        let mut booters: Vec<Booter> = (0..params.population)
            .map(|i| Booter {
                id: i as u32,
                popularity: zipf.pmf(i),
                alive: true,
                stranded: 0.0,
            })
            .collect();
        let mut next_id = params.population as u32;
        let takedown_weeks =
            takedown_dates().map(|d| d.to_sim_time().week_index());
        let mut capacity = Vec::with_capacity(STUDY_WEEKS);
        let mut alive_counts = Vec::with_capacity(STUDY_WEEKS);

        for week in 0..STUDY_WEEKS as i64 {
            // Organic churn: an operator exits and a newcomer inherits
            // the market share (demand persists, §2.1).
            for i in 0..booters.len() {
                if booters[i].alive && rng.chance(params.weekly_churn) {
                    booters[i].alive = false;
                    let popularity = booters[i].popularity;
                    booters.push(Booter {
                        id: next_id,
                        popularity,
                        alive: true,
                        stranded: 0.0,
                    });
                    next_id += 1;
                }
            }
            // Law-enforcement actions: seize the top-k alive services.
            for (action, &td_week) in takedown_weeks.iter().enumerate() {
                if week == td_week {
                    let mut alive_idx: Vec<usize> = booters
                        .iter()
                        .enumerate()
                        .filter(|(_, b)| b.alive)
                        .map(|(i, _)| i)
                        .collect();
                    alive_idx.sort_by(|&a, &b| {
                        booters[b].popularity.total_cmp(&booters[a].popularity)
                    });
                    let seized: Vec<usize> = alive_idx
                        .iter()
                        .take(params.takedown_sizes[action])
                        .copied()
                        .collect();
                    // Most customers migrate to survivors at once; the
                    // rest are stranded until the operator respawns.
                    let mut migrated_total = 0.0;
                    for &i in &seized {
                        booters[i].alive = false;
                        let migrated = booters[i].popularity * params.customer_migration;
                        booters[i].stranded = booters[i].popularity - migrated;
                        migrated_total += migrated;
                        booters[i].popularity = 0.0;
                    }
                    let survivor_mass: f64 = booters
                        .iter()
                        .filter(|b| b.alive)
                        .map(|b| b.popularity)
                        .sum();
                    if survivor_mass > 0.0 {
                        for b in booters.iter_mut().filter(|b| b.alive) {
                            b.popularity += migrated_total * b.popularity / survivor_mass;
                        }
                    } else {
                        // The action wiped out the whole market: there is
                        // nowhere to migrate, so all demand waits for the
                        // respawns (demand conservation).
                        let stranded_mass: f64 =
                            seized.iter().map(|&i| booters[i].stranded).sum();
                        for &i in &seized {
                            let share = if stranded_mass > 0.0 {
                                booters[i].stranded / stranded_mass
                            } else {
                                1.0 / seized.len() as f64
                            };
                            booters[i].stranded += migrated_total * share;
                        }
                    }
                }
            }
            // Respawns: seized operators return under new domains and
            // recapture their stranded customers.
            for i in 0..booters.len() {
                if booters[i].stranded > 0.0 && rng.chance(params.respawn_probability) {
                    let popularity = booters[i].stranded;
                    booters[i].stranded = 0.0;
                    booters.push(Booter {
                        id: next_id,
                        popularity,
                        alive: true,
                        stranded: 0.0,
                    });
                    next_id += 1;
                }
            }
            capacity.push(
                booters
                    .iter()
                    .filter(|b| b.alive)
                    .map(|b| b.popularity)
                    .sum(),
            );
            alive_counts.push(booters.iter().filter(|b| b.alive).count());
        }
        BooterMarket {
            params,
            capacity,
            alive_counts,
            takedown_weeks,
        }
    }

    /// Total market capacity at a study week.
    pub fn capacity_at_week(&self, week: i64) -> f64 {
        self.capacity
            .get(week.clamp(0, STUDY_WEEKS as i64 - 1) as usize)
            .copied()
            .unwrap_or(0.0)
    }

    pub fn alive_at_week(&self, week: i64) -> usize {
        self.alive_counts
            .get(week.clamp(0, STUDY_WEEKS as i64 - 1) as usize)
            .copied()
            .unwrap_or(0)
    }

    /// The macro multiplier this market induces: capacity normalized to
    /// the pre-takedown average — the mechanistic counterpart of
    /// `TimelineParams::takedown_multiplier`.
    pub fn induced_multiplier(&self, t: SimTime) -> f64 {
        let week = t.week_index();
        let pre: f64 = self.capacity[..self.takedown_weeks[0] as usize]
            .iter()
            .sum::<f64>()
            / self.takedown_weeks[0] as f64;
        self.capacity_at_week(week) / pre.max(1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::TimelineParams;

    fn market() -> BooterMarket {
        BooterMarket::simulate(BooterMarketParams::default(), &SimRng::new(5))
    }

    #[test]
    fn capacity_stable_before_takedowns() {
        let m = market();
        let w0 = m.capacity_at_week(0);
        let w_pre = m.capacity_at_week(m.takedown_weeks[0] - 1);
        assert!(
            (w_pre / w0 - 1.0).abs() < 0.25,
            "pre-takedown drift {w0} -> {w_pre}"
        );
    }

    #[test]
    fn takedown_dents_capacity() {
        let m = market();
        let before = m.capacity_at_week(m.takedown_weeks[0] - 1);
        let after = m.capacity_at_week(m.takedown_weeks[0]);
        assert!(after < before * 0.95, "takedown invisible: {before} -> {after}");
    }

    #[test]
    fn market_recovers_via_respawns() {
        // §2.1: booters "often return shortly". Within ~10 weeks the
        // market recovers most of the dent.
        let m = market();
        let before = m.capacity_at_week(m.takedown_weeks[0] - 1);
        let dip = m.capacity_at_week(m.takedown_weeks[0] + 1);
        let later = m.capacity_at_week(m.takedown_weeks[0] + 12);
        assert!(later > dip, "no recovery");
        assert!(
            later > before * 0.85,
            "recovery too weak: {before} -> {dip} -> {later}"
        );
    }

    #[test]
    fn alive_count_replenishes() {
        let m = market();
        let initial = m.alive_at_week(0);
        let final_count = m.alive_at_week(STUDY_WEEKS as i64 - 1);
        assert!(
            final_count as f64 > initial as f64 * 0.8,
            "population collapsed: {initial} -> {final_count}"
        );
    }

    #[test]
    fn booter_market_matches_macro_dip() {
        // Averaged over seeds, the market's induced multiplier matches
        // the macro takedown curve: a modest dip right after each
        // action, recovery after.
        let macro_curve = TimelineParams::default();
        let seeds = [1u64, 2, 3, 4, 5, 6, 7, 8];
        let markets: Vec<BooterMarket> = seeds
            .iter()
            .map(|&s| BooterMarket::simulate(BooterMarketParams::default(), &SimRng::new(s)))
            .collect();
        let mean_mult = |week: i64| -> f64 {
            markets
                .iter()
                .map(|m| m.induced_multiplier(SimTime::from_weeks(week)))
                .sum::<f64>()
                / markets.len() as f64
        };
        let td = markets[0].takedown_weeks[0];
        // Shortly after the takedown, both models dip below 0.95.
        let mech_dip = mean_mult(td + 1);
        let macro_dip = macro_curve.takedown_multiplier(SimTime::from_weeks(td + 1));
        assert!(mech_dip < 0.95, "mechanistic dip {mech_dip}");
        assert!(
            (mech_dip - macro_dip).abs() < 0.12,
            "dip mismatch: mech {mech_dip:.3} vs macro {macro_dip:.3}"
        );
        // Ten weeks on, both have mostly recovered.
        let mech_rec = mean_mult(td + 10);
        let macro_rec = macro_curve.takedown_multiplier(SimTime::from_weeks(td + 10));
        assert!(
            (mech_rec - macro_rec).abs() < 0.12,
            "recovery mismatch: mech {mech_rec:.3} vs macro {macro_rec:.3}"
        );
    }

    #[test]
    fn deterministic() {
        let a = BooterMarket::simulate(BooterMarketParams::default(), &SimRng::new(9));
        let b = BooterMarket::simulate(BooterMarketParams::default(), &SimRng::new(9));
        for w in 0..STUDY_WEEKS as i64 {
            assert_eq!(a.capacity_at_week(w), b.capacity_at_week(w));
        }
    }

    #[test]
    fn popularity_is_heavy_tailed() {
        let m = BooterMarket::simulate(BooterMarketParams::default(), &SimRng::new(5));
        // Zipf head: total capacity exceeds population/10 × smallest
        // service's popularity many-fold — proxy: capacity at week 0
        // concentrated (top service ≈ pmf(0) of the Zipf).
        let z = Zipf::new(
            m.params.population,
            m.params.popularity_exponent,
        );
        assert!(z.pmf(0) > 5.0 * z.pmf(m.params.population - 1));
    }
}
