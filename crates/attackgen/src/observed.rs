//! The common output type of every observatory: what one vantage point
//! believes it saw.
//!
//! The paper's comparison machinery consumes exactly two projections of
//! these records (§5 "Data aggregation"): weekly *attack counts* (new
//! attacks per day summed to weekly totals) and daily *(date, target IP)*
//! tuples. Keeping the observation type minimal and shared lets the
//! analytics treat academic and industry observatories uniformly.

use crate::attack::AttackId;
use netmodel::Ipv4;
use serde::{Deserialize, Serialize};
use simcore::SimTime;

/// One attack event as inferred by a single observatory.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObservedAttack {
    /// Ground-truth attack this observation descends from. Real
    /// observatories don't have this — it exists for validation joins
    /// and is never used by the reproduction analytics.
    pub attack_id: AttackId,
    /// When the observatory first saw the attack.
    pub start: SimTime,
    /// Target addresses this observatory attributed to the attack
    /// (a subset of the ground-truth target list).
    pub targets: Vec<Ipv4>,
}

impl ObservedAttack {
    /// The (day, target) tuples this observation contributes to target-
    /// overlap analysis (§7: "we used the tuple (attack start date,
    /// target IP address) to identify a target").
    pub fn target_tuples(&self) -> impl Iterator<Item = (i64, Ipv4)> + '_ {
        let day = self.start.day_index();
        self.targets.iter().map(move |&ip| (day, ip))
    }

    /// Study week of the observation.
    pub fn week(&self) -> i64 {
        self.start.week_index()
    }
}

/// Count observed attacks per study week (the §5 aggregation).
pub fn weekly_counts(observations: &[ObservedAttack]) -> Vec<f64> {
    let mut out = vec![0.0; simcore::STUDY_WEEKS];
    for o in observations {
        let w = o.week();
        if (0..simcore::STUDY_WEEKS as i64).contains(&w) {
            out[w as usize] += 1.0;
        }
    }
    out
}

/// Collect the distinct (day, target IP) tuples of an observation set.
pub fn distinct_target_tuples(observations: &[ObservedAttack]) -> Vec<(i64, Ipv4)> {
    distinct_target_tuples_of(observations.iter())
}

/// Like [`distinct_target_tuples`], but over any iterator of borrowed
/// observations — callers holding `Vec<&ObservedAttack>` (e.g. a
/// baseline sample) can compute tuples without cloning a single record.
pub fn distinct_target_tuples_of<'a>(
    observations: impl Iterator<Item = &'a ObservedAttack>,
) -> Vec<(i64, Ipv4)> {
    let mut tuples: Vec<(i64, Ipv4)> = observations.flat_map(|o| o.target_tuples()).collect();
    tuples.sort_unstable();
    tuples.dedup();
    tuples
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(day: i64, ips: &[u32]) -> ObservedAttack {
        ObservedAttack {
            attack_id: AttackId(day as u64),
            start: SimTime::from_days(day),
            targets: ips.iter().map(|&i| Ipv4(i)).collect(),
        }
    }

    #[test]
    fn tuples_expand_targets() {
        let o = obs(3, &[1, 2, 3]);
        let t: Vec<_> = o.target_tuples().collect();
        assert_eq!(t, vec![(3, Ipv4(1)), (3, Ipv4(2)), (3, Ipv4(3))]);
    }

    #[test]
    fn weekly_counts_bucket_correctly() {
        let observations = vec![obs(0, &[1]), obs(6, &[1]), obs(7, &[1]), obs(14, &[1])];
        let counts = weekly_counts(&observations);
        assert_eq!(counts[0], 2.0);
        assert_eq!(counts[1], 1.0);
        assert_eq!(counts[2], 1.0);
        assert_eq!(counts[3], 0.0);
    }

    #[test]
    fn weekly_counts_ignore_out_of_study() {
        let mut o = obs(0, &[1]);
        o.start = SimTime::from_days(-5);
        let counts = weekly_counts(&[o]);
        assert!(counts.iter().all(|&c| c == 0.0));
    }

    #[test]
    fn distinct_tuples_dedupe() {
        let observations = vec![obs(1, &[9, 9, 8]), obs(1, &[9]), obs(2, &[9])];
        let tuples = distinct_target_tuples(&observations);
        assert_eq!(
            tuples,
            vec![(1, Ipv4(8)), (1, Ipv4(9)), (2, Ipv4(9))]
        );
    }
}
