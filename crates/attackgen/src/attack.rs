//! The attack event model.
//!
//! One [`Attack`] is the ground-truth record of a single DDoS event in
//! the simulation — what an omniscient observer would log. Each
//! observatory then sees (or misses) a distorted slice of it, which is
//! exactly the phenomenon the paper studies (§4: "different detection
//! approaches, and even the same approach using different parameters and
//! vantage points, will yield different inferences").

use netmodel::{AmpVector, Asn, Ipv4, Transport};
use serde::{Deserialize, Serialize};
use simcore::SimTime;
use std::borrow::Cow;

/// Unique attack identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AttackId(pub u64);

/// The two attack classes the paper compares (§2.1), with direct-path
/// split by spoofing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackClass {
    /// Direct path with randomly spoofed sources (RSDoS). Produces
    /// backscatter that network telescopes observe.
    DirectPathSpoofed,
    /// Direct path without spoofing (state exhaustion, L7 floods).
    /// Invisible to telescopes and honeypots.
    DirectPathNonSpoofed,
    /// Reflection-amplification via open reflectors. Honeypots observe
    /// these when selected as reflectors.
    ReflectionAmplification,
}

impl AttackClass {
    /// Direct-path (of either spoofing flavor)?
    pub const fn is_direct_path(self) -> bool {
        matches!(
            self,
            AttackClass::DirectPathSpoofed | AttackClass::DirectPathNonSpoofed
        )
    }

    pub const fn is_reflection(self) -> bool {
        matches!(self, AttackClass::ReflectionAmplification)
    }

    pub const fn label(self) -> &'static str {
        match self {
            AttackClass::DirectPathSpoofed => "dp-spoofed",
            AttackClass::DirectPathNonSpoofed => "dp-nonspoofed",
            AttackClass::ReflectionAmplification => "reflection-amplification",
        }
    }
}

/// Concrete attack vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackVector {
    /// TCP SYN flood (direct path; spoofed or not).
    SynFlood,
    /// Generic UDP flood (direct path).
    UdpFlood,
    /// ICMP flood (direct path).
    IcmpFlood,
    /// Application-layer flood over established connections
    /// (direct path, never spoofed — several vendors reported L7 growth,
    /// §3).
    HttpFlood,
    /// Reflection-amplification via the given protocol.
    Amplification(AmpVector),
}

impl AttackVector {
    /// Transport protocol of the traffic arriving at the victim.
    pub const fn transport(self) -> Transport {
        match self {
            AttackVector::SynFlood | AttackVector::HttpFlood => Transport::Tcp,
            AttackVector::UdpFlood => Transport::Udp,
            AttackVector::IcmpFlood => Transport::Icmp,
            AttackVector::Amplification(_) => Transport::Udp,
        }
    }

    pub const fn amp_vector(self) -> Option<AmpVector> {
        match self {
            AttackVector::Amplification(v) => Some(v),
            _ => None,
        }
    }

    /// Label for CSV/report output. Always borrowed: the four
    /// direct-path names are literals and the eleven `amp-*` names are
    /// pre-joined statics, so per-record rendering loops no longer
    /// allocate a fresh `String` per call.
    pub const fn label(self) -> Cow<'static, str> {
        Cow::Borrowed(match self {
            AttackVector::SynFlood => "syn-flood",
            AttackVector::UdpFlood => "udp-flood",
            AttackVector::IcmpFlood => "icmp-flood",
            AttackVector::HttpFlood => "http-flood",
            AttackVector::Amplification(v) => match v {
                AmpVector::Dns => "amp-dns",
                AmpVector::Ntp => "amp-ntp",
                AmpVector::Cldap => "amp-cldap",
                AmpVector::Ssdp => "amp-ssdp",
                AmpVector::CharGen => "amp-chargen",
                AmpVector::Qotd => "amp-qotd",
                AmpVector::Rpc => "amp-rpc",
                AmpVector::Memcached => "amp-memcached",
                AmpVector::Snmp => "amp-snmp",
                AmpVector::NetBios => "amp-netbios",
                AmpVector::WsDiscovery => "amp-wsdiscovery",
            },
        })
    }
}

/// How a reflection attack uses the reflector population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReflectorUse {
    pub vector: AmpVector,
    /// Number of distinct reflectors abused for the attack.
    pub reflector_count: u32,
}

/// Ground-truth record of one DDoS attack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Attack {
    pub id: AttackId,
    pub class: AttackClass,
    pub vector: AttackVector,
    pub start: SimTime,
    pub duration_secs: u32,
    /// Attacked addresses. More than one ⇒ carpet bombing (the addresses
    /// share a routed prefix; Appendix I).
    pub targets: Vec<Ipv4>,
    /// Origin AS of the targets.
    pub target_asn: Asn,
    /// Aggregate packet rate toward the target(s), packets/second.
    pub pps: f64,
    /// Aggregate bit rate toward the target(s), bits/second.
    pub bps: f64,
    /// For reflection attacks: reflector usage.
    pub reflectors: Option<ReflectorUse>,
    /// For spoofed direct-path attacks: the fraction of the IPv4 space
    /// the attacker draws spoofed sources from (1.0 = fully random;
    /// § 6.1 reason (ii)/(iii): some attacks rotate through less than the
    /// full space or avoid known telescopes).
    pub spoof_space_fraction: f64,
    /// Index of the campaign that spawned this attack, if any.
    pub campaign: Option<u32>,
}

impl Attack {
    /// End instant (exclusive).
    pub fn end(&self) -> SimTime {
        self.start.plus_secs(self.duration_secs as i64)
    }

    /// Primary (first) target address.
    pub fn primary_target(&self) -> Ipv4 {
        self.targets[0]
    }

    /// Is this a carpet-bombing (multi-address) attack?
    pub fn is_carpet_bombing(&self) -> bool {
        self.targets.len() > 1
    }

    /// Packet rate per individual target address.
    pub fn pps_per_target(&self) -> f64 {
        self.pps / self.targets.len() as f64
    }

    /// Total packets sent toward the victim over the whole attack.
    pub fn total_packets(&self) -> f64 {
        self.pps * self.duration_secs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmodel::AmpVector;

    fn attack() -> Attack {
        Attack {
            id: AttackId(1),
            class: AttackClass::ReflectionAmplification,
            vector: AttackVector::Amplification(AmpVector::Ntp),
            start: SimTime(1000),
            duration_secs: 600,
            targets: vec![Ipv4::new(1, 2, 3, 4), Ipv4::new(1, 2, 3, 5)],
            target_asn: Asn(16276),
            pps: 50_000.0,
            bps: 4e9,
            reflectors: Some(ReflectorUse {
                vector: AmpVector::Ntp,
                reflector_count: 800,
            }),
            spoof_space_fraction: 1.0,
            campaign: None,
        }
    }

    #[test]
    fn class_predicates() {
        assert!(AttackClass::DirectPathSpoofed.is_direct_path());
        assert!(AttackClass::DirectPathNonSpoofed.is_direct_path());
        assert!(!AttackClass::ReflectionAmplification.is_direct_path());
        assert!(AttackClass::ReflectionAmplification.is_reflection());
        assert!(!AttackClass::DirectPathSpoofed.is_reflection());
    }

    #[test]
    fn vector_transport_mapping() {
        assert_eq!(AttackVector::SynFlood.transport(), Transport::Tcp);
        assert_eq!(AttackVector::UdpFlood.transport(), Transport::Udp);
        assert_eq!(AttackVector::IcmpFlood.transport(), Transport::Icmp);
        assert_eq!(
            AttackVector::Amplification(AmpVector::Dns).transport(),
            Transport::Udp
        );
    }

    #[test]
    fn amp_vector_extraction() {
        assert_eq!(
            AttackVector::Amplification(AmpVector::Cldap).amp_vector(),
            Some(AmpVector::Cldap)
        );
        assert_eq!(AttackVector::SynFlood.amp_vector(), None);
    }

    #[test]
    fn derived_quantities() {
        let a = attack();
        assert_eq!(a.end(), SimTime(1600));
        assert_eq!(a.primary_target(), Ipv4::new(1, 2, 3, 4));
        assert!(a.is_carpet_bombing());
        assert_eq!(a.pps_per_target(), 25_000.0);
        assert_eq!(a.total_packets(), 30_000_000.0);
    }

    #[test]
    fn single_target_not_carpet() {
        let mut a = attack();
        a.targets.truncate(1);
        assert!(!a.is_carpet_bombing());
        assert_eq!(a.pps_per_target(), a.pps);
    }

    #[test]
    fn labels() {
        assert_eq!(AttackClass::DirectPathSpoofed.label(), "dp-spoofed");
        assert_eq!(AttackVector::SynFlood.label(), "syn-flood");
        assert_eq!(
            AttackVector::Amplification(AmpVector::Ssdp).label(),
            "amp-ssdp"
        );
        // The static amp labels must stay consistent with the AmpVector
        // labels they were pre-joined from, and never allocate.
        for v in AmpVector::ALL {
            let label = AttackVector::Amplification(v).label();
            assert_eq!(label, format!("amp-{}", v.label()));
            assert!(matches!(label, Cow::Borrowed(_)));
        }
    }
}
