//! The macro-level trend timeline: how attack intensity evolves over the
//! 4.5-year study.
//!
//! The paper *observes* these dynamics (§6); the generator *encodes* them
//! so the observatories can re-derive the figures:
//!
//! * secular growth of direct-path attacks (Fig. 2: four of five
//!   observatories trend upward),
//! * the 2020 pandemic surge in both classes (§6.3 "Pandemic"),
//! * the 2021–22 decline of spoofed reflection-amplification attacks
//!   attributed to the industry SAV push (§2.3, Netscout's −17 %),
//! * small dips after the law-enforcement takedowns of 2022-12-13 and
//!   2023-05-04 (Fig. 3, red dashed lines; §6.2 finds the footprint
//!   "indeterminate" — our dips are correspondingly small and
//!   short-lived),
//! * the 2023 renewed rise of RA attacks carried by *new* vectors
//!   (invisible to honeypots that do not emulate them — the mechanism we
//!   use to reproduce Hopscotch's flat 2023),
//! * mild first-half-of-year seasonality (§6.1: IXP and Netscout peaks
//!   fall in H1),
//! * protocol-mix drift (§7.3: AmpPot-favored CHARGEN vs
//!   Hopscotch-favored CLDAP until mid-2020).
//!
//! Everything is a pure function of time plus [`TimelineParams`], so
//! ablation benches can switch individual components off.

use crate::attack::AttackClass;
use netmodel::AmpVector;
use serde::{Deserialize, Serialize};
use simcore::dist::smoothstep;
use simcore::time::takedown_dates;
use simcore::{Date, SimTime};

/// Years (fractional, 365.25-day) since the study epoch for a civil date.
fn yr(y: i32, m: u8, d: u8) -> f64 {
    Date::new(y, m, d).to_sim_time().years_f64()
}

/// Tunable parameters of the trend timeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimelineParams {
    /// Baseline direct-path attacks per week at t = 0.
    pub dp_base_per_week: f64,
    /// Baseline reflection-amplification attacks per week at t = 0.
    pub ra_base_per_week: f64,
    /// Exponential growth rate of DP attacks (per year).
    pub dp_growth_per_year: f64,
    /// Exponential growth rate of RA attacks (per year), before SAV and
    /// recovery effects.
    pub ra_growth_per_year: f64,
    /// Peak extra multiplier of the 2020 pandemic surge (0.8 ⇒ ×1.8).
    pub pandemic_peak_dp: f64,
    pub pandemic_peak_ra: f64,
    /// Total relative reduction of *spoofed* attack volume attributed to
    /// SAV deployment by end-2022 (0.4 ⇒ ×0.6 floor).
    pub sav_reduction: f64,
    /// Depth of the post-takedown dip (0.15 ⇒ ×0.85 right after).
    pub takedown_dip: f64,
    /// Exponential recovery time constant after a takedown, in weeks.
    pub takedown_recovery_weeks: f64,
    /// Amplitude of the annual seasonality (peaks in H1).
    pub seasonal_amplitude: f64,
    /// Extra RA growth through 2023 carried by emerging vectors.
    pub ra_2023_recovery: f64,
    /// Sigma of weekly multiplicative log-normal noise.
    pub noise_sigma: f64,
    /// Fraction of direct-path attacks that spoof sources, at t = 0.
    pub dp_spoofed_fraction_start: f64,
    /// Same fraction at the end of the study (SAV pressure).
    pub dp_spoofed_fraction_end: f64,
}

impl Default for TimelineParams {
    fn default() -> Self {
        TimelineParams {
            dp_base_per_week: 650.0,
            ra_base_per_week: 1030.0,
            dp_growth_per_year: 0.24,
            ra_growth_per_year: 0.02,
            pandemic_peak_dp: 0.65,
            pandemic_peak_ra: 0.85,
            sav_reduction: 0.38,
            takedown_dip: 0.16,
            takedown_recovery_weeks: 3.0,
            seasonal_amplitude: 0.13,
            ra_2023_recovery: 0.55,
            noise_sigma: 0.22,
            dp_spoofed_fraction_start: 0.58,
            dp_spoofed_fraction_end: 0.38,
        }
    }
}

impl TimelineParams {
    /// Annual seasonality factor; maximum around March (the paper's H1
    /// peaks), minimum around September.
    pub fn seasonality(&self, t: SimTime) -> f64 {
        let phase = t.years_f64().fract();
        1.0 + self.seasonal_amplitude * (std::f64::consts::TAU * (phase - 0.2)).cos()
    }

    /// Pandemic surge: ramps up over 2020Q2, plateaus, decays through
    /// 2021H1. Returns the *extra* fraction (0 outside the window).
    fn pandemic_shape(t: SimTime) -> f64 {
        let y = t.years_f64();
        let up = smoothstep((y - yr(2020, 3, 1)) / (yr(2020, 7, 1) - yr(2020, 3, 1)));
        let down = smoothstep((y - yr(2021, 1, 1)) / (yr(2021, 7, 1) - yr(2021, 1, 1)));
        up * (1.0 - down)
    }

    /// Pandemic multiplier for a class.
    pub fn pandemic(&self, class: AttackClass, t: SimTime) -> f64 {
        let peak = match class {
            AttackClass::ReflectionAmplification => self.pandemic_peak_ra,
            _ => self.pandemic_peak_dp,
        };
        1.0 + peak * Self::pandemic_shape(t)
    }

    /// SAV-deployment multiplier applied to *spoofed* volume: 1.0 until
    /// early 2021, declining to `1 - sav_reduction` by end-2022
    /// (the "concerted industry effort since 2021", §2.3).
    pub fn sav_multiplier(&self, t: SimTime) -> f64 {
        let y = t.years_f64();
        let progress = smoothstep((y - yr(2021, 2, 1)) / (yr(2022, 12, 1) - yr(2021, 2, 1)));
        1.0 - self.sav_reduction * progress
    }

    /// Post-takedown dip multiplier (applies mainly to booter-driven RA
    /// traffic; §6.2 finds the long-term impact insignificant, so the
    /// dip decays quickly).
    pub fn takedown_multiplier(&self, t: SimTime) -> f64 {
        let mut m = 1.0;
        for d in takedown_dates() {
            let dt_weeks = (t.0 - d.to_sim_time().0) as f64 / (7.0 * 86_400.0);
            if dt_weeks >= 0.0 {
                m *= 1.0 - self.takedown_dip * (-dt_weeks / self.takedown_recovery_weeks).exp();
            }
        }
        m
    }

    /// 2023 RA recovery multiplier (new vectors coming online).
    pub fn ra_recovery(&self, t: SimTime) -> f64 {
        let y = t.years_f64();
        1.0 + self.ra_2023_recovery
            * smoothstep((y - yr(2022, 11, 1)) / (yr(2023, 6, 1) - yr(2022, 11, 1)))
    }

    /// Expected attacks per week for a class at time `t` (without
    /// weekly noise — the generator multiplies noise in on top).
    pub fn weekly_rate(&self, class: AttackClass, t: SimTime) -> f64 {
        let years = t.years_f64();
        match class {
            AttackClass::DirectPathSpoofed => {
                // SAV pressure enters through the declining spoofed
                // fraction, not a second multiplier — the telescopes
                // still saw absolute RSDoS growth over the study
                // (Fig. 2(a,b)) because overall DP growth outpaced the
                // spoofing decline.
                self.dp_base_per_week
                    * self.dp_spoofed_fraction(t)
                    * (self.dp_growth_per_year * years).exp()
                    * self.pandemic(class, t)
                    * self.seasonality(t)
                    * self.takedown_multiplier(t).sqrt() // booters do some DP too
            }
            AttackClass::DirectPathNonSpoofed => {
                self.dp_base_per_week
                    * (1.0 - self.dp_spoofed_fraction(t))
                    * (self.dp_growth_per_year * years).exp()
                    * self.pandemic(class, t)
                    * self.seasonality(t)
            }
            AttackClass::ReflectionAmplification => {
                self.ra_base_per_week
                    * (self.ra_growth_per_year * years).exp()
                    * self.pandemic(class, t)
                    * self.seasonality(t)
                    * self.sav_multiplier(t)
                    * self.takedown_multiplier(t)
                    * self.ra_recovery(t)
            }
        }
    }

    /// Fraction of direct-path attacks using spoofed sources; declines
    /// linearly-in-smoothstep across the study under SAV pressure.
    pub fn dp_spoofed_fraction(&self, t: SimTime) -> f64 {
        let y = t.years_f64();
        let progress = smoothstep((y - yr(2020, 6, 1)) / (yr(2023, 1, 1) - yr(2020, 6, 1)));
        self.dp_spoofed_fraction_start
            + (self.dp_spoofed_fraction_end - self.dp_spoofed_fraction_start) * progress
    }

    /// Relative weight of each amplification vector at time `t`
    /// (unnormalized; the generator normalizes before sampling).
    ///
    /// Encodes the protocol-mix drift of §7.3 and the 2023 emerging-
    /// vector recovery:
    /// * CLDAP strong until mid-2020, then declining,
    /// * CHARGEN surging late-2020 through 2021,
    /// * NTP slowly declining (monlist remediation, §2.3),
    /// * DNS slowly growing,
    /// * WS-Discovery/SNMP near zero until late 2022, then rising.
    pub fn vector_weight(&self, v: AmpVector, t: SimTime) -> f64 {
        let y = t.years_f64();
        let base = v.reflector_pool_share();
        let modifier = match v {
            AmpVector::Cldap => {
                // ×2.2 early, declining to ×0.6 after mid-2020.
                2.2 - 1.6 * smoothstep((y - yr(2020, 4, 1)) / (yr(2020, 10, 1) - yr(2020, 4, 1)))
            }
            AmpVector::CharGen => {
                // surge from late 2020, fading through 2022.
                let up = smoothstep((y - yr(2020, 8, 1)) / (yr(2020, 12, 1) - yr(2020, 8, 1)));
                let down = smoothstep((y - yr(2021, 10, 1)) / (yr(2022, 6, 1) - yr(2021, 10, 1)));
                1.0 + 2.0 * up * (1.0 - down)
            }
            AmpVector::Ntp => 1.4 - 0.6 * smoothstep(y / 4.5),
            AmpVector::Dns => 0.9 + 0.4 * smoothstep(y / 4.5),
            AmpVector::WsDiscovery | AmpVector::Snmp => {
                // Emerging vectors carrying the 2023 recovery.
                0.05 + 4.0 * smoothstep((y - yr(2022, 10, 1)) / (yr(2023, 5, 1) - yr(2022, 10, 1)))
            }
            _ => 1.0,
        };
        base * modifier
    }

    /// Normalized vector mix at time `t`.
    pub fn vector_mix(&self, t: SimTime) -> Vec<(AmpVector, f64)> {
        let raw: Vec<(AmpVector, f64)> = AmpVector::ALL
            .iter()
            .map(|&v| (v, self.vector_weight(v, t)))
            .collect();
        let total: f64 = raw.iter().map(|(_, w)| w).sum();
        raw.into_iter().map(|(v, w)| (v, w / total)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(y: i32, m: u8, d: u8) -> SimTime {
        Date::new(y, m, d).to_sim_time()
    }

    fn p() -> TimelineParams {
        TimelineParams::default()
    }

    #[test]
    fn seasonality_peaks_in_h1() {
        let p = p();
        let march = p.seasonality(t(2019, 3, 15));
        let sept = p.seasonality(t(2019, 9, 15));
        assert!(march > 1.05, "march {march}");
        assert!(sept < 0.95, "sept {sept}");
    }

    #[test]
    fn pandemic_bump_timing() {
        let p = p();
        let cls = AttackClass::ReflectionAmplification;
        assert_eq!(p.pandemic(cls, t(2019, 6, 1)), 1.0);
        assert!(p.pandemic(cls, t(2020, 9, 1)) > 1.5);
        assert!((p.pandemic(cls, t(2022, 1, 1)) - 1.0).abs() < 0.05);
    }

    #[test]
    fn pandemic_hits_ra_harder() {
        let p = p();
        let mid = t(2020, 9, 1);
        assert!(
            p.pandemic(AttackClass::ReflectionAmplification, mid)
                > p.pandemic(AttackClass::DirectPathSpoofed, mid)
        );
    }

    #[test]
    fn sav_declines_then_floors() {
        let p = p();
        assert_eq!(p.sav_multiplier(t(2019, 6, 1)), 1.0);
        assert_eq!(p.sav_multiplier(t(2021, 1, 1)), 1.0);
        let mid = p.sav_multiplier(t(2021, 12, 1));
        assert!(mid < 1.0 && mid > 1.0 - p.sav_reduction);
        let floor = p.sav_multiplier(t(2023, 6, 1));
        assert!((floor - (1.0 - p.sav_reduction)).abs() < 1e-9);
    }

    #[test]
    fn takedown_dips_and_recovers() {
        let p = p();
        let before = p.takedown_multiplier(t(2022, 12, 12));
        let after = p.takedown_multiplier(t(2022, 12, 14));
        let later = p.takedown_multiplier(t(2023, 3, 1));
        assert_eq!(before, 1.0);
        assert!(after < 0.9, "after {after}");
        assert!(later > 0.97, "later {later}");
    }

    #[test]
    fn two_takedowns_compound_briefly() {
        let p = p();
        // Right after the second takedown only the second dip is deep;
        // the first has mostly decayed.
        let after_second = p.takedown_multiplier(t(2023, 5, 5));
        assert!(after_second < 0.9 && after_second > 0.7);
    }

    #[test]
    fn ra_rate_shape_matches_paper() {
        let p = p();
        let cls = AttackClass::ReflectionAmplification;
        let r2019 = p.weekly_rate(cls, t(2019, 3, 1));
        let r2020 = p.weekly_rate(cls, t(2020, 9, 15));
        let r2022 = p.weekly_rate(cls, t(2022, 9, 15));
        let r2023 = p.weekly_rate(cls, t(2023, 5, 20));
        // 2020 surge.
        assert!(r2020 > 1.4 * r2019, "2020 {r2020} vs 2019 {r2019}");
        // 2021-22 decline below the 2020 peak.
        assert!(r2022 < 0.75 * r2020, "2022 {r2022} vs 2020 {r2020}");
        // 2023 recovery above 2022.
        assert!(r2023 > 1.1 * r2022, "2023 {r2023} vs 2022 {r2022}");
    }

    #[test]
    fn dp_rate_grows_over_study() {
        let p = p();
        let total = |time| {
            p.weekly_rate(AttackClass::DirectPathSpoofed, time)
                + p.weekly_rate(AttackClass::DirectPathNonSpoofed, time)
        };
        assert!(total(t(2023, 5, 1)) > 1.5 * total(t(2019, 3, 1)));
    }

    #[test]
    fn ra_dominates_dp_early_then_flips() {
        // Figure 5: Netscout's RA/DP share crosses 50 % toward DP at
        // 2021Q2. The global rates should flip around then too.
        let p = p();
        let dp = |time| {
            p.weekly_rate(AttackClass::DirectPathSpoofed, time)
                + p.weekly_rate(AttackClass::DirectPathNonSpoofed, time)
        };
        let ra = |time| p.weekly_rate(AttackClass::ReflectionAmplification, time);
        assert!(ra(t(2019, 6, 1)) > dp(t(2019, 6, 1)), "RA should lead in 2019");
        assert!(dp(t(2022, 6, 1)) > ra(t(2022, 6, 1)), "DP should lead by 2022");
    }

    #[test]
    fn spoofed_fraction_declines() {
        let p = p();
        assert!((p.dp_spoofed_fraction(t(2019, 1, 15)) - 0.58).abs() < 0.01);
        assert!((p.dp_spoofed_fraction(t(2023, 6, 1)) - 0.38).abs() < 0.01);
        let a = p.dp_spoofed_fraction(t(2020, 1, 1));
        let b = p.dp_spoofed_fraction(t(2022, 1, 1));
        assert!(a > b);
    }

    #[test]
    fn vector_mix_normalized() {
        let p = p();
        for &date in &[t(2019, 2, 1), t(2021, 7, 1), t(2023, 4, 1)] {
            let mix = p.vector_mix(date);
            let total: f64 = mix.iter().map(|(_, w)| w).sum();
            assert!((total - 1.0).abs() < 1e-9);
            assert!(mix.iter().all(|(_, w)| *w >= 0.0));
        }
    }

    #[test]
    fn cldap_declines_chargen_surges() {
        // §7.3: CLDAP-heavy until mid-2020, CHARGEN surge afterwards.
        let p = p();
        let cldap_early = p.vector_weight(AmpVector::Cldap, t(2019, 9, 1));
        let cldap_late = p.vector_weight(AmpVector::Cldap, t(2021, 3, 1));
        assert!(cldap_early > 2.0 * cldap_late);
        let chargen_early = p.vector_weight(AmpVector::CharGen, t(2020, 3, 1));
        let chargen_peak = p.vector_weight(AmpVector::CharGen, t(2021, 2, 1));
        assert!(chargen_peak > 2.0 * chargen_early);
    }

    #[test]
    fn emerging_vectors_rise_in_2023() {
        let p = p();
        let early = p.vector_weight(AmpVector::WsDiscovery, t(2021, 1, 1));
        let late = p.vector_weight(AmpVector::WsDiscovery, t(2023, 5, 1));
        assert!(late > 10.0 * early, "early {early} late {late}");
    }

    #[test]
    fn rates_always_positive() {
        let p = p();
        for w in 0..simcore::STUDY_WEEKS as i64 {
            let time = SimTime::from_weeks(w);
            for cls in [
                AttackClass::DirectPathSpoofed,
                AttackClass::DirectPathNonSpoofed,
                AttackClass::ReflectionAmplification,
            ] {
                assert!(p.weekly_rate(cls, time) > 0.0);
            }
        }
    }
}
