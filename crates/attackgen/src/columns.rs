//! Columnar (struct-of-arrays) storage for the attack population and
//! the observation streams.
//!
//! At paper scale (~600 k attacks) the array-of-structs [`Attack`]
//! representation is fine; at the 10 M+ scale the reproduction targets
//! it is not: every record carries a 24-byte `Vec<Ipv4>` header plus a
//! separate heap allocation for (usually) a single target address, and
//! the aggregation scans (§5 weekly counts, §7 target tuples) chase a
//! pointer per record. [`AttackColumns`] stores each field in its own
//! parallel column and replaces every per-attack target `Vec` with one
//! shared arena indexed by `(offset, len)` ranges, so
//!
//! * the population costs a flat ~59 bytes/attack instead of ~102,
//! * generation shards concatenate column-wise with a single
//!   permutation sort instead of merging 96-byte structs, and
//! * the §5/§7 projections become branch-light linear scans over dense
//!   arrays.
//!
//! The struct forms survive as *views*: [`AttackRef`] (and
//! [`ObservedRef`] for observations) borrow one logical record from the
//! columns and expose exactly the [`Attack`] field surface, so
//! observers and experiments read `a.pps`, `a.targets`, `a.end()` as
//! before without materializing anything.
//!
//! Narrow encodings (all asserted on entry, never silently truncated):
//! ids and start seconds fit `u32` (the study spans ~1.4 × 10⁸ s and
//! ids are densely rebased), `campaign: Option<u32>` uses `u32::MAX`
//! as the `None` sentinel, and reflector usage collapses to a count
//! column (`u32::MAX` = no reflectors) because the reflector vector is
//! always the attack vector's amplification protocol.

use crate::attack::{Attack, AttackClass, AttackId, AttackVector, ReflectorUse};
use crate::observed::ObservedAttack;
use netmodel::{Asn, Ipv4};
use serde::{Deserialize, Serialize};
use simcore::SimTime;

/// Sentinel in the `campaign` column for "not part of a campaign".
const NO_CAMPAIGN: u32 = u32::MAX;
/// Sentinel in the `reflector_count` column for "no reflectors".
const NO_REFLECTORS: u32 = u32::MAX;

/// The ground-truth attack population in struct-of-arrays layout.
///
/// All columns have identical length; `target_offsets` has one extra
/// trailing entry so row `i`'s targets are
/// `target_arena[target_offsets[i]..target_offsets[i + 1]]`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AttackColumns {
    pub id: Vec<u32>,
    pub class: Vec<AttackClass>,
    pub vector: Vec<AttackVector>,
    pub start_secs: Vec<u32>,
    pub duration_secs: Vec<u32>,
    pub target_asn: Vec<Asn>,
    pub pps: Vec<f64>,
    pub bps: Vec<f64>,
    /// `u32::MAX` ⇒ no reflectors (non-amplification vectors).
    pub reflector_count: Vec<u32>,
    pub spoof_space_fraction: Vec<f64>,
    /// `u32::MAX` ⇒ not a campaign attack.
    pub campaign: Vec<u32>,
    /// Row `i` owns `target_arena[target_offsets[i]..target_offsets[i+1]]`.
    /// Always `len() + 1` entries (a single `[0]` when empty).
    pub target_offsets: Vec<u32>,
    /// Shared target storage for every attack.
    pub target_arena: Vec<Ipv4>,
}

/// Borrowed view of one attack row — field-compatible with [`Attack`]
/// except that `targets` is a borrowed slice of the shared arena.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackRef<'a> {
    pub id: AttackId,
    pub class: AttackClass,
    pub vector: AttackVector,
    pub start: SimTime,
    pub duration_secs: u32,
    pub targets: &'a [Ipv4],
    pub target_asn: Asn,
    pub pps: f64,
    pub bps: f64,
    pub reflectors: Option<ReflectorUse>,
    pub spoof_space_fraction: f64,
    pub campaign: Option<u32>,
}

impl AttackRef<'_> {
    /// End instant (exclusive).
    pub fn end(&self) -> SimTime {
        self.start.plus_secs(self.duration_secs as i64)
    }

    /// Primary (first) target address.
    pub fn primary_target(&self) -> Ipv4 {
        self.targets[0]
    }

    /// Is this a carpet-bombing (multi-address) attack?
    pub fn is_carpet_bombing(&self) -> bool {
        self.targets.len() > 1
    }

    /// Packet rate per individual target address.
    pub fn pps_per_target(&self) -> f64 {
        self.pps / self.targets.len() as f64
    }

    /// Total packets sent toward the victim over the whole attack.
    pub fn total_packets(&self) -> f64 {
        self.pps * self.duration_secs as f64
    }

    /// Materialize an owned [`Attack`] (clones the target slice). Meant
    /// for small sampled subsets handed to packet-level APIs, not for
    /// bulk conversion.
    pub fn to_attack(&self) -> Attack {
        Attack {
            id: self.id,
            class: self.class,
            vector: self.vector,
            start: self.start,
            duration_secs: self.duration_secs,
            targets: self.targets.to_vec(),
            target_asn: self.target_asn,
            pps: self.pps,
            bps: self.bps,
            reflectors: self.reflectors,
            spoof_space_fraction: self.spoof_space_fraction,
            campaign: self.campaign,
        }
    }
}

impl Attack {
    /// View this owned attack through the columnar record interface, so
    /// code written against [`AttackRef`] also accepts hand-built
    /// struct attacks (every observer keeps its `&Attack` entry point
    /// as a one-line wrapper over this).
    pub fn view(&self) -> AttackRef<'_> {
        AttackRef {
            id: self.id,
            class: self.class,
            vector: self.vector,
            start: self.start,
            duration_secs: self.duration_secs,
            targets: &self.targets,
            target_asn: self.target_asn,
            pps: self.pps,
            bps: self.bps,
            reflectors: self.reflectors,
            spoof_space_fraction: self.spoof_space_fraction,
            campaign: self.campaign,
        }
    }
}

impl AttackColumns {
    pub fn new() -> AttackColumns {
        AttackColumns {
            target_offsets: vec![0],
            ..AttackColumns::default()
        }
    }

    /// Pre-size every column for `rows` attacks and `arena` total
    /// target addresses.
    pub fn with_capacity(rows: usize, arena: usize) -> AttackColumns {
        let mut offsets = Vec::with_capacity(rows + 1);
        offsets.push(0);
        AttackColumns {
            id: Vec::with_capacity(rows),
            class: Vec::with_capacity(rows),
            vector: Vec::with_capacity(rows),
            start_secs: Vec::with_capacity(rows),
            duration_secs: Vec::with_capacity(rows),
            target_asn: Vec::with_capacity(rows),
            pps: Vec::with_capacity(rows),
            bps: Vec::with_capacity(rows),
            reflector_count: Vec::with_capacity(rows),
            spoof_space_fraction: Vec::with_capacity(rows),
            campaign: Vec::with_capacity(rows),
            target_offsets: offsets,
            target_arena: Vec::with_capacity(arena),
        }
    }

    pub fn len(&self) -> usize {
        self.id.len()
    }

    pub fn is_empty(&self) -> bool {
        self.id.is_empty()
    }

    /// Append one attack record. Panics if a field does not fit the
    /// columnar encoding (negative or >u32 start, id ≥ u32::MAX, a
    /// reflector set inconsistent with the vector) — those are
    /// generator bugs, not data.
    pub fn push(&mut self, a: &Attack) {
        let id = u32::try_from(a.id.0).expect("attack id exceeds the u32 column");
        let start =
            u32::try_from(a.start.0).expect("attack start outside the u32-seconds column range");
        let reflector_count = match (a.vector.amp_vector(), a.reflectors) {
            (Some(v), Some(r)) => {
                assert_eq!(r.vector, v, "reflector vector disagrees with attack vector");
                assert_ne!(r.reflector_count, NO_REFLECTORS, "reflector count sentinel");
                r.reflector_count
            }
            (_, None) => NO_REFLECTORS,
            (None, Some(_)) => panic!("reflectors on a non-amplification vector"),
        };
        let campaign = match a.campaign {
            Some(c) => {
                assert_ne!(c, NO_CAMPAIGN, "campaign index sentinel");
                c
            }
            None => NO_CAMPAIGN,
        };
        self.id.push(id);
        self.class.push(a.class);
        self.vector.push(a.vector);
        self.start_secs.push(start);
        self.duration_secs.push(a.duration_secs);
        self.target_asn.push(a.target_asn);
        self.pps.push(a.pps);
        self.bps.push(a.bps);
        self.reflector_count.push(reflector_count);
        self.spoof_space_fraction.push(a.spoof_space_fraction);
        self.campaign.push(campaign);
        self.target_arena.extend_from_slice(&a.targets);
        let end = u32::try_from(self.target_arena.len()).expect("target arena exceeds u32 offsets");
        self.target_offsets.push(end);
    }

    /// Target slice of row `i`.
    pub fn targets(&self, i: usize) -> &[Ipv4] {
        &self.target_arena[self.target_offsets[i] as usize..self.target_offsets[i + 1] as usize]
    }

    /// Borrowed view of row `i`.
    pub fn get(&self, i: usize) -> AttackRef<'_> {
        let rc = self.reflector_count[i];
        let reflectors = (rc != NO_REFLECTORS).then(|| ReflectorUse {
            vector: self.vector[i]
                .amp_vector()
                .expect("reflector count on a non-amplification row"),
            reflector_count: rc,
        });
        let campaign = self.campaign[i];
        AttackRef {
            id: AttackId(self.id[i] as u64),
            class: self.class[i],
            vector: self.vector[i],
            start: SimTime(self.start_secs[i] as i64),
            duration_secs: self.duration_secs[i],
            targets: self.targets(i),
            target_asn: self.target_asn[i],
            pps: self.pps[i],
            bps: self.bps[i],
            reflectors,
            spoof_space_fraction: self.spoof_space_fraction[i],
            campaign: (campaign != NO_CAMPAIGN).then_some(campaign),
        }
    }

    /// Iterate all rows as borrowed views.
    pub fn iter(&self) -> ColumnsIter<'_> {
        ColumnsIter {
            cols: self,
            front: 0,
            back: self.len(),
        }
    }

    /// Build columns from owned attack records (tests, small fixtures).
    pub fn from_attacks(attacks: &[Attack]) -> AttackColumns {
        let arena: usize = attacks.iter().map(|a| a.targets.len()).sum();
        let mut out = AttackColumns::with_capacity(attacks.len(), arena);
        for a in attacks {
            out.push(a);
        }
        out
    }

    /// Materialize every row as an owned [`Attack`]. Test/debug helper —
    /// reintroduces the per-record allocations the columns exist to
    /// avoid.
    pub fn to_vec(&self) -> Vec<Attack> {
        self.iter().map(|a| a.to_attack()).collect()
    }

    /// Append a generation shard whose ids are shard-local (dense from
    /// 0), rebasing them by `id_base`. Consumes the shard so its
    /// buffers free progressively during a multi-shard merge.
    pub fn append_rebased(&mut self, shard: AttackColumns, id_base: u64) {
        let base = self.target_arena.len() as u64;
        assert!(
            base + shard.target_arena.len() as u64 <= u32::MAX as u64,
            "target arena exceeds u32 offsets"
        );
        self.id.extend(shard.id.iter().map(|&i| {
            u32::try_from(id_base + i as u64).expect("rebased attack id exceeds the u32 column")
        }));
        self.class.extend_from_slice(&shard.class);
        self.vector.extend_from_slice(&shard.vector);
        self.start_secs.extend_from_slice(&shard.start_secs);
        self.duration_secs.extend_from_slice(&shard.duration_secs);
        self.target_asn.extend_from_slice(&shard.target_asn);
        self.pps.extend_from_slice(&shard.pps);
        self.bps.extend_from_slice(&shard.bps);
        self.reflector_count.extend_from_slice(&shard.reflector_count);
        self.spoof_space_fraction
            .extend_from_slice(&shard.spoof_space_fraction);
        self.campaign.extend_from_slice(&shard.campaign);
        self.target_offsets
            .extend(shard.target_offsets[1..].iter().map(|&o| o + base as u32));
        self.target_arena.extend_from_slice(&shard.target_arena);
    }

    /// Append rows `lo..hi` of `src`, rebasing ids by `id_base` —
    /// column-wise `memcpy`s plus one arena range copy.
    fn append_range_rebased(&mut self, src: &AttackColumns, lo: usize, hi: usize, id_base: u64) {
        if lo >= hi {
            return;
        }
        self.id.extend(src.id[lo..hi].iter().map(|&i| {
            u32::try_from(id_base + i as u64).expect("rebased attack id exceeds the u32 column")
        }));
        self.class.extend_from_slice(&src.class[lo..hi]);
        self.vector.extend_from_slice(&src.vector[lo..hi]);
        self.start_secs.extend_from_slice(&src.start_secs[lo..hi]);
        self.duration_secs.extend_from_slice(&src.duration_secs[lo..hi]);
        self.target_asn.extend_from_slice(&src.target_asn[lo..hi]);
        self.pps.extend_from_slice(&src.pps[lo..hi]);
        self.bps.extend_from_slice(&src.bps[lo..hi]);
        self.reflector_count.extend_from_slice(&src.reflector_count[lo..hi]);
        self.spoof_space_fraction
            .extend_from_slice(&src.spoof_space_fraction[lo..hi]);
        self.campaign.extend_from_slice(&src.campaign[lo..hi]);
        let (src_lo, src_hi) = (src.target_offsets[lo], src.target_offsets[hi]);
        let end = self.target_arena.len() as u64 + u64::from(src_hi - src_lo);
        assert!(end <= u64::from(u32::MAX), "target arena exceeds u32 offsets");
        let dst_base = self.target_arena.len() as u32;
        self.target_offsets.extend(
            src.target_offsets[lo + 1..=hi].iter().map(|&o| o - src_lo + dst_base),
        );
        self.target_arena
            .extend_from_slice(&src.target_arena[src_lo as usize..src_hi as usize]);
    }

    /// Copy one row of `src` (rebasing its id) onto the end of `self`.
    fn push_row_rebased(&mut self, src: &AttackColumns, i: usize, id_base: u64) {
        self.append_range_rebased(src, i, i + 1, id_base);
    }

    /// Are the rows in canonical `(start, id)` order?
    pub fn is_sorted_by_start_id(&self) -> bool {
        let key =
            |i: usize| ((self.start_secs[i] as u64) << 32) | self.id[i] as u64;
        (1..self.len()).all(|i| key(i - 1) < key(i))
    }

    /// Merge a `(start, id)`-sorted shard with shard-local dense ids
    /// into `self`, rebasing ids by `id_base`. Rows starting at or
    /// after `spill_bound` (seconds — the first week of the *next*
    /// shard) are held back in `carry` instead of appended: a week's
    /// companion attacks can start up to 30 minutes into the following
    /// week (`AttackGenerator::maybe_companion`), so a shard's sorted
    /// tail may interleave with the next shard's head. The previous
    /// call's carry is spliced in at its correct `(start, id)`
    /// positions — carry ids are always smaller than this shard's
    /// rebased ids, so on a start tie the carry row wins. With
    /// `spill_bound: None` (final shard) everything drains. Feeding
    /// every shard through this in week order produces exactly the
    /// concat-then-`sort_by_start_id` population while only ever
    /// holding `self`, one shard, and a tiny carry — the merge that
    /// lets a 10M+ study peak near the population's own footprint.
    pub fn merge_sorted_shard(
        &mut self,
        shard: AttackColumns,
        id_base: u64,
        carry: &mut AttackColumns,
        spill_bound: Option<u32>,
    ) {
        debug_assert!(shard.is_sorted_by_start_id(), "shard not in (start, id) order");
        let split = match spill_bound {
            Some(b) => shard.start_secs.partition_point(|&s| s < b),
            None => shard.len(),
        };
        let old_carry = std::mem::replace(carry, AttackColumns::new());
        let mut lo = 0usize;
        for c in 0..old_carry.len() {
            // First shard row ordered after this carry row: shard rows
            // with an equal start have larger (rebased) ids.
            let s = old_carry.start_secs[c];
            let pos = lo + shard.start_secs[lo..split].partition_point(|&x| x < s);
            self.append_range_rebased(&shard, lo, pos, id_base);
            // Carry rows were rebased when they were held back.
            self.push_row_rebased(&old_carry, c, 0);
            lo = pos;
        }
        self.append_range_rebased(&shard, lo, split, id_base);
        for i in split..shard.len() {
            if let Some(b) = spill_bound {
                debug_assert!(
                    shard.start_secs[i] >= b,
                    "spill split must be a sorted suffix"
                );
            }
            carry.push_row_rebased(&shard, i, id_base);
        }
    }

    /// Sort rows by `(start, id)` — the population's canonical order.
    /// Ids are unique, so the packed `start << 32 | id` key makes an
    /// unstable sort deterministic. One `u32` permutation plus one
    /// column-sized scratch buffer at a time; never a row-wise struct
    /// sort.
    pub fn sort_by_start_id(&mut self) {
        let n = self.len();
        let mut perm: Vec<u32> = (0..n as u32).collect();
        perm.sort_unstable_by_key(|&i| {
            ((self.start_secs[i as usize] as u64) << 32) | self.id[i as usize] as u64
        });
        if perm.windows(2).all(|w| w[0] < w[1]) {
            return; // already sorted — skip the gather entirely
        }
        gather(&mut self.id, &perm);
        gather(&mut self.class, &perm);
        gather(&mut self.vector, &perm);
        gather(&mut self.start_secs, &perm);
        gather(&mut self.duration_secs, &perm);
        gather(&mut self.target_asn, &perm);
        gather(&mut self.pps, &perm);
        gather(&mut self.bps, &perm);
        gather(&mut self.reflector_count, &perm);
        gather(&mut self.spoof_space_fraction, &perm);
        gather(&mut self.campaign, &perm);
        let mut arena = Vec::with_capacity(self.target_arena.len());
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        for &i in &perm {
            let i = i as usize;
            arena.extend_from_slice(
                &self.target_arena
                    [self.target_offsets[i] as usize..self.target_offsets[i + 1] as usize],
            );
            offsets.push(arena.len() as u32);
        }
        self.target_arena = arena;
        self.target_offsets = offsets;
    }

    /// Drop the growth slack every column accumulated while being
    /// appended to (large buffers shrink in place via `mremap`; this
    /// never copies the population wholesale).
    pub fn shrink_to_fit(&mut self) {
        self.id.shrink_to_fit();
        self.class.shrink_to_fit();
        self.vector.shrink_to_fit();
        self.start_secs.shrink_to_fit();
        self.duration_secs.shrink_to_fit();
        self.target_asn.shrink_to_fit();
        self.pps.shrink_to_fit();
        self.bps.shrink_to_fit();
        self.reflector_count.shrink_to_fit();
        self.spoof_space_fraction.shrink_to_fit();
        self.campaign.shrink_to_fit();
        self.target_offsets.shrink_to_fit();
        self.target_arena.shrink_to_fit();
    }

    /// Heap bytes currently held by the columns (capacities, matching
    /// what the old code measured for `Vec<Attack>` populations).
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        self.id.capacity() * size_of::<u32>()
            + self.class.capacity() * size_of::<AttackClass>()
            + self.vector.capacity() * size_of::<AttackVector>()
            + self.start_secs.capacity() * size_of::<u32>()
            + self.duration_secs.capacity() * size_of::<u32>()
            + self.target_asn.capacity() * size_of::<Asn>()
            + self.pps.capacity() * size_of::<f64>()
            + self.bps.capacity() * size_of::<f64>()
            + self.reflector_count.capacity() * size_of::<u32>()
            + self.spoof_space_fraction.capacity() * size_of::<f64>()
            + self.campaign.capacity() * size_of::<u32>()
            + self.target_offsets.capacity() * size_of::<u32>()
            + self.target_arena.capacity() * size_of::<Ipv4>()
    }
}

impl<'a> IntoIterator for &'a AttackColumns {
    type Item = AttackRef<'a>;
    type IntoIter = ColumnsIter<'a>;
    fn into_iter(self) -> ColumnsIter<'a> {
        self.iter()
    }
}

/// Double-ended, exact-size iterator over [`AttackColumns`] rows.
#[derive(Debug, Clone)]
pub struct ColumnsIter<'a> {
    cols: &'a AttackColumns,
    front: usize,
    back: usize,
}

impl<'a> Iterator for ColumnsIter<'a> {
    type Item = AttackRef<'a>;
    fn next(&mut self) -> Option<AttackRef<'a>> {
        if self.front >= self.back {
            return None;
        }
        let item = self.cols.get(self.front);
        self.front += 1;
        Some(item)
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.back - self.front;
        (n, Some(n))
    }
    fn nth(&mut self, n: usize) -> Option<AttackRef<'a>> {
        self.front = (self.front + n).min(self.back);
        self.next()
    }
}

impl ExactSizeIterator for ColumnsIter<'_> {}

impl<'a> DoubleEndedIterator for ColumnsIter<'a> {
    fn next_back(&mut self) -> Option<AttackRef<'a>> {
        if self.front >= self.back {
            return None;
        }
        self.back -= 1;
        Some(self.cols.get(self.back))
    }
}

/// One observatory's output stream in struct-of-arrays layout: the
/// columnar sibling of `Vec<ObservedAttack>`, again with a shared
/// target arena. Observation counts track the attack population
/// (~0.8 rows/attack at default coverage), so keeping these columnar is
/// what lets the observe stage fit inside the generation stage's
/// high-water mark at 10 M+ attacks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObservationColumns {
    pub attack_id: Vec<u64>,
    pub start: Vec<i64>,
    /// Row `i` owns `target_arena[target_offsets[i]..target_offsets[i+1]]`.
    pub target_offsets: Vec<u32>,
    pub target_arena: Vec<Ipv4>,
}

impl Default for ObservationColumns {
    fn default() -> ObservationColumns {
        ObservationColumns::new()
    }
}

/// Borrowed view of one observation row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObservedRef<'a> {
    pub attack_id: AttackId,
    pub start: SimTime,
    pub targets: &'a [Ipv4],
}

impl ObservedRef<'_> {
    /// The (day, target) tuples this observation contributes (§7).
    pub fn target_tuples(&self) -> impl Iterator<Item = (i64, Ipv4)> + '_ {
        let day = self.start.day_index();
        self.targets.iter().map(move |&ip| (day, ip))
    }

    /// Study week of the observation.
    pub fn week(&self) -> i64 {
        self.start.week_index()
    }

    pub fn to_observed(&self) -> ObservedAttack {
        ObservedAttack {
            attack_id: self.attack_id,
            start: self.start,
            targets: self.targets.to_vec(),
        }
    }
}

impl ObservationColumns {
    pub fn new() -> ObservationColumns {
        ObservationColumns {
            attack_id: Vec::new(),
            start: Vec::new(),
            target_offsets: vec![0],
            target_arena: Vec::new(),
        }
    }

    pub fn with_capacity(rows: usize) -> ObservationColumns {
        let mut offsets = Vec::with_capacity(rows + 1);
        offsets.push(0);
        ObservationColumns {
            attack_id: Vec::with_capacity(rows),
            start: Vec::with_capacity(rows),
            target_offsets: offsets,
            target_arena: Vec::with_capacity(rows),
        }
    }

    pub fn len(&self) -> usize {
        self.attack_id.len()
    }

    pub fn is_empty(&self) -> bool {
        self.attack_id.is_empty()
    }

    /// Row capacity of the id column (used by cache tests to tell
    /// physically distinct instances apart).
    pub fn capacity(&self) -> usize {
        self.attack_id.capacity()
    }

    /// Append one complete observation row.
    pub fn push_row(&mut self, attack_id: AttackId, start: SimTime, targets: &[Ipv4]) {
        self.begin_row(attack_id, start);
        self.target_arena.extend_from_slice(targets);
        self.commit_row();
    }

    /// Start a row whose targets will be pushed incrementally with
    /// [`ObservationColumns::push_target`]; finish it with
    /// [`ObservationColumns::commit_row`] or abandon it with
    /// [`ObservationColumns::rollback_row`]. Lets subset observers
    /// (e.g. Akamai clipping to protected space) filter targets
    /// straight into the arena without a scratch `Vec`.
    pub fn begin_row(&mut self, attack_id: AttackId, start: SimTime) {
        self.attack_id.push(attack_id.0);
        self.start.push(start.0);
    }

    pub fn push_target(&mut self, ip: Ipv4) {
        self.target_arena.push(ip);
    }

    pub fn commit_row(&mut self) {
        let end = u32::try_from(self.target_arena.len())
            .expect("observation target arena exceeds u32 offsets");
        self.target_offsets.push(end);
    }

    /// Targets pushed since the last committed row — i.e. the size of
    /// the row currently being built.
    pub fn pending_targets(&self) -> usize {
        let last = *self.target_offsets.last().expect("offsets never empty");
        self.target_arena.len() - last as usize
    }

    /// Abandon the row opened by the last [`ObservationColumns::begin_row`].
    pub fn rollback_row(&mut self) {
        self.attack_id.pop();
        self.start.pop();
        let last = *self.target_offsets.last().expect("offsets never empty");
        self.target_arena.truncate(last as usize);
    }

    /// Target slice of row `i`.
    pub fn targets(&self, i: usize) -> &[Ipv4] {
        &self.target_arena[self.target_offsets[i] as usize..self.target_offsets[i + 1] as usize]
    }

    pub fn get(&self, i: usize) -> ObservedRef<'_> {
        ObservedRef {
            attack_id: AttackId(self.attack_id[i]),
            start: SimTime(self.start[i]),
            targets: self.targets(i),
        }
    }

    pub fn iter(&self) -> ObservationsIter<'_> {
        ObservationsIter {
            cols: self,
            front: 0,
            back: self.len(),
        }
    }

    /// Append another stream, consuming it (shard merge).
    pub fn append(&mut self, other: ObservationColumns) {
        let base = self.target_arena.len() as u64;
        assert!(
            base + other.target_arena.len() as u64 <= u32::MAX as u64,
            "observation target arena exceeds u32 offsets"
        );
        self.attack_id.extend_from_slice(&other.attack_id);
        self.start.extend_from_slice(&other.start);
        self.target_offsets
            .extend(other.target_offsets[1..].iter().map(|&o| o + base as u32));
        self.target_arena.extend_from_slice(&other.target_arena);
    }

    pub fn from_observed(observations: &[ObservedAttack]) -> ObservationColumns {
        let mut out = ObservationColumns::with_capacity(observations.len());
        for o in observations {
            out.push_row(o.attack_id, o.start, &o.targets);
        }
        out
    }

    /// Materialize owned records (test/debug helper).
    pub fn to_vec(&self) -> Vec<ObservedAttack> {
        self.iter().map(|o| o.to_observed()).collect()
    }

    /// Sort rows by `(start, attack_id)` — the canonical observation
    /// order (used after carpet reconstruction). The input index breaks
    /// ties, making this exactly equivalent to a stable struct sort.
    pub fn sort_by_start_id(&mut self) {
        let n = self.len();
        let mut perm: Vec<u32> = (0..n as u32).collect();
        perm.sort_unstable_by_key(|&i| (self.start[i as usize], self.attack_id[i as usize], i));
        if perm.windows(2).all(|w| w[0] < w[1]) {
            return;
        }
        gather(&mut self.attack_id, &perm);
        gather(&mut self.start, &perm);
        let mut arena = Vec::with_capacity(self.target_arena.len());
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        for &i in &perm {
            let i = i as usize;
            arena.extend_from_slice(
                &self.target_arena
                    [self.target_offsets[i] as usize..self.target_offsets[i + 1] as usize],
            );
            offsets.push(arena.len() as u32);
        }
        self.target_arena = arena;
        self.target_offsets = offsets;
    }

    /// Count observed attacks per study week (the §5 aggregation) — a
    /// single branch-light pass over the dense start column.
    pub fn weekly_counts(&self) -> Vec<f64> {
        let mut out = vec![0.0; simcore::STUDY_WEEKS];
        for &start in &self.start {
            let w = SimTime(start).week_index();
            if (0..simcore::STUDY_WEEKS as i64).contains(&w) {
                out[w as usize] += 1.0;
            }
        }
        out
    }

    /// Distinct (day, target IP) tuples of the stream (§7) — one linear
    /// scan over the arena, then sort + dedup.
    pub fn distinct_target_tuples(&self) -> Vec<(i64, Ipv4)> {
        let mut tuples: Vec<(i64, Ipv4)> = Vec::with_capacity(self.target_arena.len());
        for i in 0..self.len() {
            let day = SimTime(self.start[i]).day_index();
            for &ip in self.targets(i) {
                tuples.push((day, ip));
            }
        }
        tuples.sort_unstable();
        tuples.dedup();
        tuples
    }

    /// Drop accumulated growth slack (see
    /// [`AttackColumns::shrink_to_fit`]).
    pub fn shrink_to_fit(&mut self) {
        self.attack_id.shrink_to_fit();
        self.start.shrink_to_fit();
        self.target_offsets.shrink_to_fit();
        self.target_arena.shrink_to_fit();
    }

    /// Heap bytes currently held by the columns.
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        self.attack_id.capacity() * size_of::<u64>()
            + self.start.capacity() * size_of::<i64>()
            + self.target_offsets.capacity() * size_of::<u32>()
            + self.target_arena.capacity() * size_of::<Ipv4>()
    }
}

impl<'a> IntoIterator for &'a ObservationColumns {
    type Item = ObservedRef<'a>;
    type IntoIter = ObservationsIter<'a>;
    fn into_iter(self) -> ObservationsIter<'a> {
        self.iter()
    }
}

/// Double-ended, exact-size iterator over [`ObservationColumns`] rows.
#[derive(Debug, Clone)]
pub struct ObservationsIter<'a> {
    cols: &'a ObservationColumns,
    front: usize,
    back: usize,
}

impl<'a> Iterator for ObservationsIter<'a> {
    type Item = ObservedRef<'a>;
    fn next(&mut self) -> Option<ObservedRef<'a>> {
        if self.front >= self.back {
            return None;
        }
        let item = self.cols.get(self.front);
        self.front += 1;
        Some(item)
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.back - self.front;
        (n, Some(n))
    }
    fn nth(&mut self, n: usize) -> Option<ObservedRef<'a>> {
        self.front = (self.front + n).min(self.back);
        self.next()
    }
}

impl ExactSizeIterator for ObservationsIter<'_> {}

impl<'a> DoubleEndedIterator for ObservationsIter<'a> {
    fn next_back(&mut self) -> Option<ObservedRef<'a>> {
        if self.front >= self.back {
            return None;
        }
        self.back -= 1;
        Some(self.cols.get(self.back))
    }
}

/// Out-of-place permutation gather for one column: `col[k] = col[perm[k]]`.
fn gather<T: Copy>(col: &mut Vec<T>, perm: &[u32]) {
    let out: Vec<T> = perm.iter().map(|&i| col[i as usize]).collect();
    *col = out;
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmodel::AmpVector;

    fn sample_attacks() -> Vec<Attack> {
        vec![
            Attack {
                id: AttackId(0),
                class: AttackClass::DirectPathSpoofed,
                vector: AttackVector::SynFlood,
                start: SimTime(5_000),
                duration_secs: 600,
                targets: vec![Ipv4(0x0A00_0001)],
                target_asn: Asn(65001),
                pps: 120_000.0,
                bps: 4.0e8,
                reflectors: None,
                spoof_space_fraction: 0.85,
                campaign: None,
            },
            Attack {
                id: AttackId(1),
                class: AttackClass::ReflectionAmplification,
                vector: AttackVector::Amplification(AmpVector::Ntp),
                start: SimTime(1_000),
                duration_secs: 1_800,
                targets: vec![Ipv4(0x0B00_0001), Ipv4(0x0B00_0002), Ipv4(0x0B00_0003)],
                target_asn: Asn(65002),
                pps: 50_000.0,
                bps: 4.0e9,
                reflectors: Some(ReflectorUse {
                    vector: AmpVector::Ntp,
                    reflector_count: 800,
                }),
                spoof_space_fraction: 1.0,
                campaign: Some(3),
            },
            Attack {
                id: AttackId(2),
                class: AttackClass::DirectPathNonSpoofed,
                vector: AttackVector::HttpFlood,
                start: SimTime(1_000),
                duration_secs: 60,
                targets: vec![Ipv4(0x0C00_0001)],
                target_asn: Asn(65003),
                pps: 9_000.0,
                bps: 3.0e7,
                reflectors: None,
                spoof_space_fraction: 0.0,
                campaign: None,
            },
        ]
    }

    #[test]
    fn round_trips_attacks_exactly() {
        let attacks = sample_attacks();
        let cols = AttackColumns::from_attacks(&attacks);
        assert_eq!(cols.len(), 3);
        assert_eq!(cols.to_vec(), attacks);
        for (a, r) in attacks.iter().zip(cols.iter()) {
            assert_eq!(a.view(), r);
            assert_eq!(a.end(), r.end());
            assert_eq!(a.is_carpet_bombing(), r.is_carpet_bombing());
            assert_eq!(a.pps_per_target(), r.pps_per_target());
            assert_eq!(a.total_packets(), r.total_packets());
            assert_eq!(a.primary_target(), r.primary_target());
        }
    }

    #[test]
    fn arena_ranges_are_contiguous() {
        let cols = AttackColumns::from_attacks(&sample_attacks());
        assert_eq!(cols.target_offsets, vec![0, 1, 4, 5]);
        assert_eq!(cols.target_arena.len(), 5);
        assert_eq!(cols.targets(1).len(), 3);
    }

    #[test]
    fn sort_matches_struct_sort() {
        let mut attacks = sample_attacks();
        let mut cols = AttackColumns::from_attacks(&attacks);
        attacks.sort_by_key(|a| (a.start, a.id));
        cols.sort_by_start_id();
        assert_eq!(cols.to_vec(), attacks);
        // Idempotent (hits the already-sorted fast path).
        let before = cols.clone();
        cols.sort_by_start_id();
        assert_eq!(cols, before);
    }

    #[test]
    fn carry_merge_matches_concat_and_sort() {
        // Synthesize three "weeks" of 2000 s with rows spilling up to
        // 300 s past each boundary (like companion attacks), exactly
        // the shape `generate_study_on` feeds the merge. Every shard
        // has dense local ids in generation order.
        let template = &sample_attacks()[0];
        let row = |id: u64, start: i64| {
            let mut a = template.clone();
            a.id = AttackId(id);
            a.start = SimTime(start);
            a.targets = vec![Ipv4(0x0A00_0000 + id as u32)];
            a
        };
        let mut rng = 0x9E37_79B9u64;
        let mut next = move |m: u64| {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (rng >> 33) % m
        };
        let mut shard_rows = |week: i64, n: u64| -> Vec<Attack> {
            (0..n)
                .map(|i| {
                    // ~1 in 6 rows spills past the week boundary.
                    let off = next(2400) as i64;
                    row(i, week * 2000 + off.min(2000 - 1) + if off >= 2000 { 300 } else { 0 })
                })
                .collect()
        };
        let shards: Vec<Vec<Attack>> = (0..3).map(|w| shard_rows(w, 40)).collect();

        // Reference: concatenate with globally rebased ids, then sort.
        let mut reference = AttackColumns::new();
        let mut base = 0u64;
        for shard in &shards {
            for a in shard {
                let mut a = a.clone();
                a.id = AttackId(base + a.id.0);
                reference.push(&a);
            }
            base += shard.len() as u64;
        }
        reference.sort_by_start_id();

        // Streamed: sort each shard, merge with the boundary carry.
        let mut out = AttackColumns::new();
        let mut carry = AttackColumns::new();
        let mut assigned = 0u64;
        for (w, shard) in shards.iter().enumerate() {
            let mut cols = AttackColumns::from_attacks(shard);
            cols.sort_by_start_id();
            let bound = (w + 1 < shards.len()).then(|| (w as u32 + 1) * 2000);
            out.merge_sorted_shard(cols, assigned, &mut carry, bound);
            assigned += shard.len() as u64;
        }
        assert!(carry.is_empty(), "final shard must drain the carry");
        assert!(out.is_sorted_by_start_id());
        assert_eq!(out, reference);
    }

    #[test]
    fn carry_merge_handles_empty_and_single_shards() {
        let attacks = sample_attacks();
        let mut sorted = AttackColumns::from_attacks(&attacks);
        sorted.sort_by_start_id();

        // One shard, no bound: plain append.
        let mut out = AttackColumns::new();
        let mut carry = AttackColumns::new();
        out.merge_sorted_shard(sorted.clone(), 0, &mut carry, None);
        assert!(carry.is_empty());
        assert_eq!(out, sorted);

        // An empty middle shard forwards the carry intact.
        let mut out = AttackColumns::new();
        let mut carry = AttackColumns::new();
        out.merge_sorted_shard(sorted.clone(), 0, &mut carry, Some(2_000));
        assert_eq!(carry.len(), 1, "the start=5000 row spills");
        out.merge_sorted_shard(AttackColumns::new(), 3, &mut carry, Some(10_000));
        assert!(carry.is_empty(), "carry rows below the bound drain");
        out.merge_sorted_shard(AttackColumns::new(), 3, &mut carry, None);
        assert_eq!(out, sorted);
    }

    #[test]
    fn append_rebased_matches_concat() {
        let attacks = sample_attacks();
        let shard_a = AttackColumns::from_attacks(&attacks[..2]);
        // Shard-local ids restart at 0.
        let mut local: Vec<Attack> = attacks[2..].to_vec();
        for (i, a) in local.iter_mut().enumerate() {
            a.id = AttackId(i as u64);
        }
        let shard_b = AttackColumns::from_attacks(&local);
        let mut merged = AttackColumns::new();
        merged.append_rebased(shard_a, 0);
        merged.append_rebased(shard_b, 2);
        assert_eq!(merged.to_vec(), attacks);
    }

    #[test]
    fn iterator_contracts() {
        let cols = AttackColumns::from_attacks(&sample_attacks());
        assert_eq!(cols.iter().len(), 3);
        let ids: Vec<u64> = cols.iter().map(|a| a.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        let rev: Vec<u64> = cols.iter().rev().map(|a| a.id.0).collect();
        assert_eq!(rev, vec![2, 1, 0]);
        let stepped: Vec<u64> = cols.iter().step_by(2).map(|a| a.id.0).collect();
        assert_eq!(stepped, vec![0, 2]);
    }

    #[test]
    fn serde_round_trip() {
        let cols = AttackColumns::from_attacks(&sample_attacks());
        let json = serde_json::to_string(&cols).expect("serialize");
        let back: AttackColumns = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, cols);

        let obs = ObservationColumns::from_observed(&[ObservedAttack {
            attack_id: AttackId(7),
            start: SimTime(-3),
            targets: vec![Ipv4(1), Ipv4(2)],
        }]);
        let json = serde_json::to_string(&obs).expect("serialize");
        let back: ObservationColumns = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, obs);
    }

    #[test]
    fn resident_bytes_tracks_columns() {
        let cols = AttackColumns::from_attacks(&sample_attacks());
        let b = cols.resident_bytes();
        use std::mem::size_of;
        let per_row = 4 * size_of::<u32>()          // id, start, duration, reflector_count
            + size_of::<AttackClass>()
            + size_of::<AttackVector>()
            + size_of::<Asn>()
            + 3 * size_of::<f64>()                  // pps, bps, spoof fraction
            + size_of::<u32>();                     // campaign
        let floor = 3 * per_row + 4 * size_of::<u32>() + 5 * size_of::<Ipv4>();
        // Capacities may exceed the floor, never undercut it.
        assert!(b >= floor, "resident {b} below the {floor} floor");
        assert!(AttackColumns::new().resident_bytes() >= 4);
    }

    fn sample_observed() -> Vec<ObservedAttack> {
        vec![
            ObservedAttack {
                attack_id: AttackId(11),
                start: SimTime(604_800 * 3 + 17),
                targets: vec![Ipv4(9), Ipv4(8)],
            },
            ObservedAttack {
                attack_id: AttackId(5),
                start: SimTime(-50),
                targets: vec![Ipv4(9)],
            },
            ObservedAttack {
                attack_id: AttackId(u64::MAX - 4),
                start: SimTime(604_800 * 3 + 17),
                targets: vec![],
            },
        ]
    }

    #[test]
    fn observations_round_trip_and_project() {
        let observed = sample_observed();
        let cols = ObservationColumns::from_observed(&observed);
        assert_eq!(cols.to_vec(), observed);
        assert_eq!(
            cols.weekly_counts(),
            crate::observed::weekly_counts(&observed)
        );
        assert_eq!(
            cols.distinct_target_tuples(),
            crate::observed::distinct_target_tuples(&observed)
        );
        for (o, r) in observed.iter().zip(cols.iter()) {
            assert_eq!(o.week(), r.week());
            assert_eq!(
                o.target_tuples().collect::<Vec<_>>(),
                r.target_tuples().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn observation_row_building_and_rollback() {
        let mut cols = ObservationColumns::new();
        cols.begin_row(AttackId(1), SimTime(10));
        cols.push_target(Ipv4(1));
        cols.push_target(Ipv4(2));
        cols.commit_row();
        cols.begin_row(AttackId(2), SimTime(20));
        cols.push_target(Ipv4(3));
        cols.rollback_row();
        cols.push_row(AttackId(3), SimTime(30), &[Ipv4(4)]);
        assert_eq!(cols.len(), 2);
        assert_eq!(cols.targets(0), &[Ipv4(1), Ipv4(2)]);
        assert_eq!(cols.get(1).attack_id, AttackId(3));
        assert_eq!(cols.targets(1), &[Ipv4(4)]);
        assert_eq!(cols.target_arena.len(), 3, "rolled-back targets evicted");
    }

    #[test]
    fn observation_append_and_sort() {
        let observed = sample_observed();
        let mut a = ObservationColumns::from_observed(&observed[..1]);
        let b = ObservationColumns::from_observed(&observed[1..]);
        a.append(b);
        assert_eq!(a.to_vec(), observed);
        let mut sorted = observed.clone();
        sorted.sort_by_key(|o| (o.start, o.attack_id));
        a.sort_by_start_id();
        assert_eq!(a.to_vec(), sorted);
    }

    #[test]
    #[should_panic(expected = "reflectors on a non-amplification vector")]
    fn inconsistent_reflectors_rejected() {
        let mut a = sample_attacks().remove(0);
        a.reflectors = Some(ReflectorUse {
            vector: AmpVector::Dns,
            reflector_count: 10,
        });
        AttackColumns::new().push(&a);
    }

    #[test]
    #[should_panic(expected = "start outside the u32-seconds column")]
    fn negative_start_rejected() {
        let mut a = sample_attacks().remove(0);
        a.start = SimTime(-1);
        AttackColumns::new().push(&a);
    }

    #[test]
    fn amp_vector_without_reflectors_round_trips() {
        let mut a = sample_attacks().remove(1);
        a.reflectors = None;
        let cols = AttackColumns::from_attacks(std::slice::from_ref(&a));
        assert_eq!(cols.get(0).reflectors, None);
        assert_eq!(cols.to_vec(), vec![a]);
    }
}
