//! The attack generator: turns the timeline, shape distributions and
//! campaign schedule into the ground-truth attack population for the
//! whole study window.

use crate::attack::{Attack, AttackClass, AttackId, AttackVector, ReflectorUse};
use crate::campaigns::{random_campaigns, scripted_campaigns, Campaign, CampaignScope};
use crate::columns::{AttackColumns, AttackRef};
use crate::shape::ShapeParams;
use crate::timeline::TimelineParams;
use netmodel::{Asn, InternetPlan, Ipv4, Rir};
use serde::{Deserialize, Serialize};
use simcore::dist::{log_normal, poisson};
use simcore::time::SECS_PER_WEEK;
use simcore::{ExecPool, SimRng, SimTime, STUDY_DAYS, STUDY_WEEKS};

/// Full generator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GenConfig {
    pub timeline: TimelineParams,
    pub shape: ShapeParams,
    /// Number of random filler campaigns layered over the scripted ones.
    pub random_campaign_count: usize,
    /// Global multiplier on campaign weekly rates. Scaled-down test
    /// studies set this below 1 so campaign peaks keep their size
    /// *relative* to the baselines.
    pub campaign_rate_scale: f64,
    /// Acceptance probability for direct-path attacks on Akamai-protected
    /// targets at study start / end. The decline reproduces Akamai's
    /// downward DP trend (Fig. 2(d)) against a globally rising DP volume
    /// (§6.3: the Prolexic rerouting requirement "will affect attack
    /// methodologies and trends in their data").
    pub akamai_dp_accept_start: f64,
    pub akamai_dp_accept_end: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            timeline: TimelineParams::default(),
            shape: ShapeParams::default(),
            random_campaign_count: 18,
            campaign_rate_scale: 1.0,
            akamai_dp_accept_start: 1.0,
            akamai_dp_accept_end: 0.10,
        }
    }
}

/// Generates the ground-truth attack stream.
pub struct AttackGenerator<'a> {
    plan: &'a InternetPlan,
    cfg: GenConfig,
    campaigns: Vec<Campaign>,
    /// Target-selection weights, index-aligned with the registry.
    weights: Vec<f64>,
    /// AS indices grouped by allocation RIR (for regional campaigns).
    by_rir: Vec<(Rir, Vec<usize>)>,
    /// AS indices of IXP members outside Netscout's customer base.
    ixp_only: Vec<usize>,
    /// Root of the per-week RNG streams: week `w` draws exclusively
    /// from `week_root.fork(w)`, so weeks generate independently — in
    /// any order, on any worker — with identical output.
    week_root: SimRng,
}

/// Per-week mutable generation state. Everything stochastic about one
/// week lives here, which is what lets [`AttackGenerator::generate_week`]
/// be `&self` and weeks run concurrently.
struct WeekCtx {
    rng: SimRng,
    next_id: u64,
}

impl WeekCtx {
    fn next_attack_id(&mut self) -> AttackId {
        let id = AttackId(self.next_id);
        self.next_id += 1;
        id
    }
}

impl<'a> AttackGenerator<'a> {
    pub fn new(plan: &'a InternetPlan, cfg: GenConfig, rng: &SimRng) -> Self {
        let mut rng = rng.fork_named("attack-generator");
        let mut campaigns = scripted_campaigns();
        campaigns.extend(random_campaigns(plan, cfg.random_campaign_count, &mut rng));
        let weights = plan.registry.target_weights();
        let mut by_rir: Vec<(Rir, Vec<usize>)> = [
            Rir::Arin,
            Rir::RipeNcc,
            Rir::Apnic,
            Rir::Lacnic,
            Rir::Afrinic,
        ]
        .iter()
        .map(|&r| (r, Vec::new()))
        .collect();
        for (idx, rec) in plan.registry.iter().enumerate() {
            if rec.target_weight <= 0.0 || rec.prefixes.is_empty() {
                continue;
            }
            if let Some(alloc) = plan.allocation_of(rec.prefixes[0].base()) {
                if let Some(slot) = by_rir.iter_mut().find(|(r, _)| *r == alloc.rir) {
                    slot.1.push(idx);
                }
            }
        }
        let ixp_only = plan
            .registry
            .iter()
            .enumerate()
            .filter(|(_, rec)| {
                rec.target_weight > 0.0
                    && plan.ixp_members.contains(&rec.asn)
                    && !plan.netscout_customers.contains(&rec.asn)
            })
            .map(|(idx, _)| idx)
            .collect();
        let week_root = rng.fork_named("week");
        AttackGenerator {
            plan,
            cfg,
            campaigns,
            weights,
            by_rir,
            ixp_only,
            week_root,
        }
    }

    /// The campaign schedule in effect.
    pub fn campaigns(&self) -> &[Campaign] {
        &self.campaigns
    }

    /// Generate the entire 4.5-year study, sorted by start time.
    /// Serial shortcut for [`AttackGenerator::generate_study_on`]; the
    /// output is identical for every pool.
    pub fn generate_study(&self) -> AttackColumns {
        self.generate_study_on(&ExecPool::serial())
    }

    /// Generate the study with weeks fanned out across `pool`, directly
    /// into columnar storage.
    ///
    /// Weeks draw from independent forks of `week_root`, so they can be
    /// generated in any order; shards are merged back in week order
    /// with ids rebased to the concatenated position — exactly the ids
    /// a serial week-by-week pass assigns. The output is bitwise
    /// identical for 1, 2, or N workers and for any shard size.
    ///
    /// Memory discipline (the 10M+ scale path): each worker sorts its
    /// own shard by `(start, id)` while it is small, and the ordered
    /// streaming fold hands shards to
    /// [`AttackColumns::merge_sorted_shard`] *as they complete*, each
    /// one freed the moment it is spliced in. Consecutive shards
    /// overlap only in the ≤ 30-minute companion spill past a week
    /// boundary, which the merge holds in a tiny carry buffer — so the
    /// study never materializes more than the merged population plus
    /// the shards currently in flight, and no global end-of-run sort
    /// (with its column-sized scratch buffers) is needed at all.
    pub fn generate_study_on(&self, pool: &ExecPool) -> AttackColumns {
        let _span = obs::span!("generate");
        let per_week = obs::metrics::histogram("gen.attacks_per_week", &obs::metrics::COUNTS);
        let forks = obs::metrics::counter("gen.rng_forks");
        let weeks: Vec<i64> = (0..STUDY_WEEKS as i64).collect();
        // Capped at 8 weeks per shard: the merge's high-water mark is
        // the population plus the shards in flight, so shard size —
        // not worker count — is the memory knob. (The output is
        // invariant to the chunking; only the peak moves.)
        let chunk = simcore::pool::shard_size(weeks.len(), pool.workers()).min(8);

        struct Merge {
            out: AttackColumns,
            carry: AttackColumns,
            assigned: u64,
        }
        let merged = pool.par_chunks_fold(
            &weeks,
            chunk,
            |_, shard| {
                let mut out = AttackColumns::new();
                for &week in shard {
                    // Each week forks exactly one stream off `week_root`.
                    forks.inc();
                    let before = out.len();
                    self.generate_week(week, &mut out);
                    per_week.record((out.len() - before) as u64);
                }
                out.sort_by_start_id();
                out
            },
            Merge {
                out: AttackColumns::new(),
                carry: AttackColumns::new(),
                assigned: 0,
            },
            |m, idx, shard| {
                // Rows at or past the next shard's first week are held
                // back and spliced into that shard when it lands.
                let next_week = (idx + 1) * chunk;
                let bound = (next_week < weeks.len())
                    .then(|| SimTime::from_weeks(weeks[next_week]).0 as u32);
                let base = m.assigned;
                m.assigned += shard.len() as u64;
                m.out.merge_sorted_shard(shard, base, &mut m.carry, bound);
            },
        );
        debug_assert!(merged.carry.is_empty(), "final shard must drain the carry");
        debug_assert!(merged.out.is_sorted_by_start_id());
        let mut out = merged.out;
        out.shrink_to_fit();
        obs::metrics::counter("gen.weeks").add(weeks.len() as u64);
        obs::metrics::counter("gen.attacks").add(out.len() as u64);
        out
    }

    /// Generate one study week into `out`. Ids continue from
    /// `out.len()`, so accumulating weeks serially into one column set
    /// and concatenating independently generated weeks agree exactly.
    pub fn generate_week(&self, week: i64, out: &mut AttackColumns) {
        let mut ctx = WeekCtx {
            rng: self.week_root.fork(week as u64),
            next_id: out.len() as u64,
        };
        let week_start = SimTime::from_weeks(week);
        // The trailing study week is partial: scale the rate.
        let days_in_week = (STUDY_DAYS - week * 7).clamp(0, 7);
        if days_in_week == 0 {
            return;
        }
        let frac = days_in_week as f64 / 7.0;
        let mid = week_start.plus_days(days_in_week / 2);

        for class in [
            AttackClass::DirectPathSpoofed,
            AttackClass::DirectPathNonSpoofed,
            AttackClass::ReflectionAmplification,
        ] {
            let sigma = self.cfg.timeline.noise_sigma;
            // Mean-one multiplicative noise.
            let noise = log_normal(&mut ctx.rng, -sigma * sigma / 2.0, sigma);
            let rate = self.cfg.timeline.weekly_rate(class, mid) * noise * frac;
            let n = poisson(&mut ctx.rng, rate);
            for _ in 0..n {
                let start = self.uniform_start(&mut ctx, week_start, days_in_week);
                if let Some(a) = self.sample_attack(&mut ctx, class, start, None) {
                    self.maybe_companion(&mut ctx, &a, out);
                    out.push(&a);
                }
            }
        }

        for c in &self.campaigns {
            if !c.active_at(mid) {
                continue;
            }
            let n = poisson(
                &mut ctx.rng,
                c.weekly_rate * self.cfg.campaign_rate_scale * frac,
            );
            for _ in 0..n {
                let start = self.uniform_start(&mut ctx, week_start, days_in_week);
                if let Some(a) = self.sample_attack(&mut ctx, c.class, start, Some(c)) {
                    out.push(&a);
                }
            }
        }
    }

    fn uniform_start(&self, ctx: &mut WeekCtx, week_start: SimTime, days: i64) -> SimTime {
        week_start.plus_secs(ctx.rng.u64_below((days * 86_400) as u64) as i64)
    }

    /// Sample one attack of the given class starting at `start`.
    /// Returns `None` only if target selection fails (empty scope).
    fn sample_attack(
        &self,
        ctx: &mut WeekCtx,
        class: AttackClass,
        start: SimTime,
        campaign: Option<&Campaign>,
    ) -> Option<Attack> {
        let (target, asn) = self.pick_target(ctx, class, start, campaign.map(|c| &c.scope))?;
        let vector = match campaign {
            Some(c) => c.vector,
            None => self.pick_vector(ctx, class, start),
        };
        let carpet = match campaign {
            Some(c) => c.carpet,
            None => {
                class == AttackClass::ReflectionAmplification
                    && ctx.rng.chance(self.cfg.shape.carpet_probability)
            }
        };
        let targets = if carpet {
            let width_range = campaign.and_then(|c| c.carpet_width);
            self.carpet_targets(ctx, target, width_range)
        } else {
            vec![target]
        };
        let duration_secs = self.cfg.shape.sample_duration(&mut ctx.rng);
        let pps_scale = campaign.map(|c| c.pps_scale).unwrap_or(1.0);
        let pps = self.cfg.shape.sample_pps(&mut ctx.rng) * pps_scale;
        let bps = match vector.amp_vector() {
            Some(v) => pps * v.response_bytes() as f64 * 8.0,
            None => self.cfg.shape.pps_to_bps(pps),
        };
        let reflectors = vector.amp_vector().map(|v| {
            let pool = *self.plan.reflector_pools.get(&v).unwrap_or(&1);
            ReflectorUse {
                vector: v,
                reflector_count: self.cfg.shape.sample_reflector_count(pool, &mut ctx.rng),
            }
        });
        let spoof_space_fraction = match class {
            AttackClass::DirectPathSpoofed => self.cfg.shape.sample_spoof_space(&mut ctx.rng),
            // RA spoofs exactly the victim address; non-spoofed DP does
            // not spoof. Neither rotates over the address space.
            _ => 0.0,
        };
        Some(Attack {
            id: ctx.next_attack_id(),
            class,
            vector,
            start,
            duration_secs,
            targets,
            target_asn: asn,
            pps,
            bps,
            reflectors,
            spoof_space_fraction,
            campaign: campaign.map(|c| c.id),
        })
    }

    /// With small probability, attach a companion attack of the other
    /// class against the same primary target (multi-vector attacks,
    /// §7.1). The companion row precedes its parent in the columns,
    /// exactly as it preceded it in the old vector.
    fn maybe_companion(&self, ctx: &mut WeekCtx, a: &Attack, out: &mut AttackColumns) {
        if !ctx.rng.chance(self.cfg.shape.multi_class_probability) {
            return;
        }
        let class = if a.class.is_reflection() {
            AttackClass::DirectPathSpoofed
        } else {
            AttackClass::ReflectionAmplification
        };
        let vector = self.pick_vector(ctx, class, a.start);
        let duration_secs = self.cfg.shape.sample_duration(&mut ctx.rng);
        let pps = self.cfg.shape.sample_pps(&mut ctx.rng);
        let bps = match vector.amp_vector() {
            Some(v) => pps * v.response_bytes() as f64 * 8.0,
            None => self.cfg.shape.pps_to_bps(pps),
        };
        let reflectors = vector.amp_vector().map(|v| {
            let pool = *self.plan.reflector_pools.get(&v).unwrap_or(&1);
            ReflectorUse {
                vector: v,
                reflector_count: self.cfg.shape.sample_reflector_count(pool, &mut ctx.rng),
            }
        });
        let spoof_space_fraction = match class {
            AttackClass::DirectPathSpoofed => self.cfg.shape.sample_spoof_space(&mut ctx.rng),
            _ => 0.0,
        };
        out.push(&Attack {
            id: ctx.next_attack_id(),
            class,
            vector,
            // Same day, shortly after: the victim is hit with both
            // classes, which the cross-observatory target join sees as a
            // same-(date, IP) tuple.
            start: a.start.plus_secs(ctx.rng.u64_below(1800) as i64),
            duration_secs,
            targets: vec![a.primary_target()],
            target_asn: a.target_asn,
            pps,
            bps,
            reflectors,
            spoof_space_fraction,
            campaign: a.campaign,
        });
    }

    fn pick_vector(&self, ctx: &mut WeekCtx, class: AttackClass, t: SimTime) -> AttackVector {
        match class {
            AttackClass::DirectPathSpoofed => {
                match ctx.rng.weighted_index(&[0.70, 0.20, 0.10]) {
                    0 => AttackVector::SynFlood,
                    1 => AttackVector::UdpFlood,
                    _ => AttackVector::IcmpFlood,
                }
            }
            AttackClass::DirectPathNonSpoofed => {
                // L7 attacks grow over the study (§3: several vendors
                // reported substantial L7 increases).
                let l7 = 0.3 + 0.3 * simcore::dist::smoothstep(t.years_f64() / 4.5);
                if ctx.rng.chance(l7) {
                    AttackVector::HttpFlood
                } else if ctx.rng.chance(0.8) {
                    AttackVector::SynFlood
                } else {
                    AttackVector::UdpFlood
                }
            }
            AttackClass::ReflectionAmplification => {
                let mix = self.cfg.timeline.vector_mix(t);
                let weights: Vec<f64> = mix.iter().map(|(_, w)| *w).collect();
                AttackVector::Amplification(mix[ctx.rng.weighted_index(&weights)].0)
            }
        }
    }

    /// Pick a target address (and its AS), honoring campaign scopes and
    /// the Akamai avoidance dynamic.
    fn pick_target(
        &self,
        ctx: &mut WeekCtx,
        class: AttackClass,
        t: SimTime,
        scope: Option<&CampaignScope>,
    ) -> Option<(Ipv4, Asn)> {
        match scope {
            Some(CampaignScope::SingleAs(asn)) => {
                let ip = self.plan.random_ip_in_asn(*asn, &mut ctx.rng)?;
                Some((ip, *asn))
            }
            Some(CampaignScope::Region(rir)) => {
                let indices = &self.by_rir.iter().find(|(r, _)| r == rir)?.1;
                if indices.is_empty() {
                    return None;
                }
                let idx = indices[ctx.rng.usize_below(indices.len())];
                let asn = self.plan.registry.by_index(idx).asn;
                let ip = self.plan.random_ip_in_asn(asn, &mut ctx.rng)?;
                Some((ip, asn))
            }
            Some(CampaignScope::IxpMembersOnly) => {
                if self.ixp_only.is_empty() {
                    return None;
                }
                let idx = self.ixp_only[ctx.rng.usize_below(self.ixp_only.len())];
                let asn = self.plan.registry.by_index(idx).asn;
                let ip = self.plan.random_ip_in_asn(asn, &mut ctx.rng)?;
                Some((ip, asn))
            }
            Some(CampaignScope::AkamaiProtected) => {
                if self.plan.akamai_prefix_list.is_empty() {
                    return None;
                }
                let p = *ctx.rng.choose(&self.plan.akamai_prefix_list);
                let ip = p.nth(ctx.rng.u64_below(p.size()));
                let asn = self.plan.asn_of(ip)?;
                Some((ip, asn))
            }
            None => {
                // Weighted AS, with DP attacks progressively avoiding
                // Akamai-protected space.
                for _ in 0..6 {
                    let idx = ctx.rng.weighted_index(&self.weights);
                    let asn = self.plan.registry.by_index(idx).asn;
                    let Some(ip) = self.plan.random_ip_in_asn(asn, &mut ctx.rng) else {
                        continue;
                    };
                    if class.is_direct_path() && self.plan.akamai_protects(ip) {
                        let progress = (t.years_f64() / 4.5).clamp(0.0, 1.0);
                        let accept = self.cfg.akamai_dp_accept_start
                            + (self.cfg.akamai_dp_accept_end - self.cfg.akamai_dp_accept_start)
                                * progress;
                        if !ctx.rng.chance(accept) {
                            continue;
                        }
                    }
                    return Some((ip, asn));
                }
                // Fall back to any weighted target.
                let idx = ctx.rng.weighted_index(&self.weights);
                let asn = self.plan.registry.by_index(idx).asn;
                let ip = self.plan.random_ip_in_asn(asn, &mut ctx.rng)?;
                Some((ip, asn))
            }
        }
    }

    /// Build a carpet-bombing target list: consecutive addresses inside
    /// the victim's routed prefix (Appendix I: attacks spread within one
    /// BGP-routed block; region-wide campaigns emerge from many such
    /// attacks).
    fn carpet_targets(
        &self,
        ctx: &mut WeekCtx,
        seed_ip: Ipv4,
        width_range: Option<(u32, u32)>,
    ) -> Vec<Ipv4> {
        let width = match width_range {
            Some((lo, hi)) => ctx.rng.u64_range(lo as u64, hi as u64),
            None => self.cfg.shape.sample_carpet_width(&mut ctx.rng) as u64,
        };
        let prefix = self
            .plan
            .routed_prefix_of(seed_ip)
            .unwrap_or(netmodel::Prefix::new(seed_ip, 24));
        let span = prefix.size().min(4096);
        let width = width.min(span);
        let max_offset = span - width;
        let base_off = if max_offset > 0 {
            ctx.rng.u64_below(max_offset + 1)
        } else {
            0
        };
        // Anchor inside the covering prefix, stepping consecutively.
        let anchor = prefix.nth(base_off);
        (0..width).map(|i| Ipv4(anchor.0 + i as u32)).collect()
    }
}

/// Convenience: generate a full study with default configuration.
pub fn generate_default_study(plan: &InternetPlan, seed: u64) -> AttackColumns {
    let rng = SimRng::new(seed);
    AttackGenerator::new(plan, GenConfig::default(), &rng).generate_study()
}

/// Weekly ground-truth attack counts per class (handy for calibration
/// tests and ablations). Accepts any row-view iterator, so it works on
/// [`AttackColumns::iter`] and on `&[Attack]` via
/// `attacks.iter().map(Attack::view)`.
pub fn weekly_class_counts<'a>(attacks: impl IntoIterator<Item = AttackRef<'a>>) -> Vec<[u64; 3]> {
    let mut out = vec![[0u64; 3]; STUDY_WEEKS];
    for a in attacks {
        let w = a.start.week_index();
        if w < 0 || w >= STUDY_WEEKS as i64 {
            continue;
        }
        let slot = match a.class {
            AttackClass::DirectPathSpoofed => 0,
            AttackClass::DirectPathNonSpoofed => 1,
            AttackClass::ReflectionAmplification => 2,
        };
        out[w as usize][slot] += 1;
    }
    out
}

/// Seconds per week re-export for sibling crates' tests.
pub const WEEK_SECS: i64 = SECS_PER_WEEK;

#[cfg(test)]
mod tests {
    use super::*;
    use netmodel::NetScale;

    use std::sync::OnceLock;

    fn small_plan() -> &'static InternetPlan {
        static PLAN: OnceLock<InternetPlan> = OnceLock::new();
        PLAN.get_or_init(|| {
            let mut rng = SimRng::new(42);
            InternetPlan::build(&NetScale::tiny(), &mut rng)
        })
    }

    /// Shared study for the read-only assertions below (regenerating it
    /// per test would dominate the suite's runtime).
    fn shared_study() -> &'static AttackColumns {
        static STUDY: OnceLock<AttackColumns> = OnceLock::new();
        STUDY.get_or_init(|| {
            let rng = SimRng::new(5);
            AttackGenerator::new(small_plan(), small_cfg(), &rng).generate_study()
        })
    }

    fn small_cfg() -> GenConfig {
        let mut cfg = GenConfig::default();
        // Shrink for unit tests.
        cfg.timeline.dp_base_per_week = 60.0;
        cfg.timeline.ra_base_per_week = 90.0;
        cfg.random_campaign_count = 4;
        cfg
    }

    #[test]
    fn deterministic_generation() {
        let plan = small_plan();
        let rng = SimRng::new(5);
        let a = AttackGenerator::new(plan, small_cfg(), &rng).generate_study();
        let b = shared_study();
        // Column-wise equality is the strongest form: every field of
        // every record, including the shared target arena, must agree.
        assert_eq!(&a, b);
    }

    #[test]
    fn parallel_weeks_match_serial() {
        let plan = small_plan();
        let rng = SimRng::new(5);
        let gen = AttackGenerator::new(plan, small_cfg(), &rng);
        let serial = gen.generate_study_on(&simcore::ExecPool::serial());
        for workers in [2, 4] {
            let par = gen.generate_study_on(&simcore::ExecPool::new(workers));
            assert_eq!(serial, par, "workers={workers}");
        }
    }

    #[test]
    fn attacks_sorted_and_inside_study() {
        let attacks = shared_study();
        assert!(attacks.len() > 10_000, "got {}", attacks.len());
        for w in attacks.start_secs.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!(attacks.iter().all(|a| a.start.in_study()));
    }

    #[test]
    fn ids_unique() {
        let attacks = shared_study();
        let mut ids: Vec<u32> = attacks.id.clone();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), attacks.len());
    }

    #[test]
    fn class_invariants() {
        let attacks = shared_study();
        for a in attacks.iter() {
            match a.class {
                AttackClass::ReflectionAmplification => {
                    assert!(a.reflectors.is_some(), "RA without reflectors");
                    assert!(a.vector.amp_vector().is_some());
                    assert_eq!(a.spoof_space_fraction, 0.0);
                }
                AttackClass::DirectPathSpoofed => {
                    assert!(a.reflectors.is_none());
                    assert!(a.spoof_space_fraction > 0.0);
                }
                AttackClass::DirectPathNonSpoofed => {
                    assert!(a.reflectors.is_none());
                    assert_eq!(a.spoof_space_fraction, 0.0);
                }
            }
            assert!(!a.targets.is_empty());
            assert!(a.pps > 0.0 && a.bps > 0.0);
            assert!(a.duration_secs >= 30);
        }
    }

    #[test]
    fn carpet_attacks_exist_and_are_contiguous() {
        let attacks = shared_study();
        let carpets: Vec<AttackRef> = attacks.iter().filter(|a| a.is_carpet_bombing()).collect();
        assert!(!carpets.is_empty());
        for c in carpets {
            for pair in c.targets.windows(2) {
                assert_eq!(pair[1].0, pair[0].0 + 1, "carpet not contiguous");
            }
        }
    }

    #[test]
    fn multi_class_companions_present() {
        let attacks = shared_study();
        // Count (day, ip) pairs hit by both classes.
        use std::collections::HashMap;
        let mut seen: HashMap<(i64, Ipv4), (bool, bool)> = HashMap::new();
        for a in attacks.iter() {
            let e = seen
                .entry((a.start.day_index(), a.primary_target()))
                .or_default();
            if a.class.is_reflection() {
                e.1 = true;
            } else {
                e.0 = true;
            }
        }
        let both = seen.values().filter(|(d, r)| *d && *r).count();
        let frac = both as f64 / seen.len() as f64;
        assert!(frac > 0.005 && frac < 0.10, "multi-class fraction {frac}");
    }

    #[test]
    fn ra_shifts_to_dp_over_time() {
        // Baseline dynamics only — the scaled-down test baselines would
        // otherwise be drowned out by fixed-rate campaigns.
        let weekly =
            weekly_class_counts(shared_study().iter().filter(|a| a.campaign.is_none()));
        let dp_2019: u64 = weekly[..26].iter().map(|w| w[0] + w[1]).sum();
        let ra_2019: u64 = weekly[..26].iter().map(|w| w[2]).sum();
        let dp_2022: u64 = weekly[160..186].iter().map(|w| w[0] + w[1]).sum();
        let ra_2022: u64 = weekly[160..186].iter().map(|w| w[2]).sum();
        assert!(ra_2019 > dp_2019, "RA should dominate 2019");
        assert!(dp_2022 > ra_2022, "DP should dominate 2022");
    }

    #[test]
    fn campaign_attacks_tagged_and_scoped() {
        let plan = small_plan();
        let attacks = shared_study();
        let brazil: Vec<AttackRef> = attacks
            .iter()
            .filter(|a| a.campaign == Some(0))
            .collect();
        assert!(!brazil.is_empty(), "brazil campaign generated nothing");
        for a in &brazil {
            assert!(a.is_carpet_bombing());
            assert_eq!(
                a.vector,
                AttackVector::Amplification(netmodel::AmpVector::Ssdp)
            );
            let alloc = plan.allocation_of(a.primary_target()).unwrap();
            assert_eq!(alloc.rir, Rir::Lacnic);
        }
    }

    #[test]
    fn akamai_dp_share_declines() {
        let plan = small_plan();
        let attacks = shared_study();
        let dp_share_protected = |lo: i64, hi: i64| {
            let dp: Vec<AttackRef> = attacks
                .iter()
                .filter(|a| {
                    a.class.is_direct_path()
                        && a.campaign.is_none()
                        && a.start.week_index() >= lo
                        && a.start.week_index() < hi
                })
                .collect();
            let protected = dp
                .iter()
                .filter(|a| plan.akamai_protects(a.primary_target()))
                .count();
            protected as f64 / dp.len().max(1) as f64
        };
        let early = dp_share_protected(0, 52);
        let late = dp_share_protected(182, 234);
        assert!(
            late < early,
            "Akamai-protected DP share should decline ({early} -> {late})"
        );
    }

    #[test]
    fn weekly_counts_cover_all_weeks() {
        let attacks = shared_study();
        let weekly = weekly_class_counts(attacks.iter());
        assert_eq!(weekly.len(), STUDY_WEEKS);
        let empty_weeks = weekly
            .iter()
            .filter(|w| w.iter().sum::<u64>() == 0)
            .count();
        assert_eq!(empty_weeks, 0, "no study week should be attack-free");
    }
}
