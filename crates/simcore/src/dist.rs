//! Statistical distributions used by the attack generator and the
//! observatory visibility models.
//!
//! Only the distributions the models actually need are implemented, each
//! with a straightforward, well-tested algorithm. All samplers draw from
//! [`crate::rng::SimRng`] so the whole simulation stays deterministic.

use crate::rng::SimRng;

/// Standard normal via the Marsaglia polar method.
pub fn standard_normal(rng: &mut SimRng) -> f64 {
    loop {
        let u = 2.0 * rng.f64() - 1.0;
        let v = 2.0 * rng.f64() - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Normal with the given mean and standard deviation.
pub fn normal(rng: &mut SimRng, mean: f64, std_dev: f64) -> f64 {
    debug_assert!(std_dev >= 0.0);
    mean + std_dev * standard_normal(rng)
}

/// Log-normal: `exp(N(mu, sigma))`. `mu`/`sigma` parameterize the
/// underlying normal (natural-log scale).
pub fn log_normal(rng: &mut SimRng, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Exponential with rate `lambda` (mean `1/lambda`).
pub fn exponential(rng: &mut SimRng, lambda: f64) -> f64 {
    debug_assert!(lambda > 0.0);
    // 1 - f64() is in (0, 1], so ln() is finite.
    -(1.0 - rng.f64()).ln() / lambda
}

/// Pareto (type I) with scale `x_min > 0` and shape `alpha > 0`.
/// Heavy-tailed; used for attack sizes and durations.
pub fn pareto(rng: &mut SimRng, x_min: f64, alpha: f64) -> f64 {
    debug_assert!(x_min > 0.0 && alpha > 0.0);
    x_min / (1.0 - rng.f64()).powf(1.0 / alpha)
}

/// Poisson-distributed count with mean `lambda`.
///
/// Knuth's multiplication method for small `lambda`; for large `lambda`
/// a normal approximation with continuity correction (the generator only
/// needs counts, not tail-exact probabilities, for `lambda` that large).
pub fn poisson(rng: &mut SimRng, lambda: f64) -> u64 {
    debug_assert!(lambda >= 0.0);
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.f64();
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        let x = normal(rng, lambda, lambda.sqrt()) + 0.5;
        if x < 0.0 {
            0
        } else {
            x as u64
        }
    }
}

/// Binomial(n, p) count.
///
/// Exact Bernoulli summation for small `n`; inversion via Poisson/normal
/// approximations for large `n` (adequate for visibility sampling where
/// `n` is a packet count).
pub fn binomial(rng: &mut SimRng, n: u64, p: f64) -> u64 {
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    let mean = n as f64 * p;
    if n <= 64 {
        (0..n).filter(|_| rng.chance(p)).count() as u64
    } else if mean < 30.0 && p < 0.05 {
        // Poisson limit; clamp to n.
        poisson(rng, mean).min(n)
    } else {
        // Normal approximation with continuity correction.
        let sd = (n as f64 * p * (1.0 - p)).sqrt();
        let x = normal(rng, mean, sd) + 0.5;
        if x < 0.0 {
            0
        } else {
            (x as u64).min(n)
        }
    }
}

/// A Zipf (power-law rank) distribution over `n` ranks `0..n`, with
/// exponent `s > 0`. Rank 0 is the most probable. Sampling is by binary
/// search over the precomputed CDF — O(log n) per draw after O(n) setup.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the distribution. Panics if `n == 0` or `s <= 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s > 0.0, "Zipf exponent must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Sample a rank in `0..n`.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.f64();
        // partition_point returns the first index with cdf[i] >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of a rank.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank >= self.cdf.len() {
            return 0.0;
        }
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

/// Clamp helper used by trend composition: linear interpolation.
pub fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + (b - a) * t
}

/// Smoothstep easing on `[0, 1]`, clamped outside. Used for gradual
/// model transitions (e.g. SAV deployment ramping up over months).
pub fn smoothstep(t: f64) -> f64 {
    let t = t.clamp(0.0, 1.0);
    t * t * (3.0 - 2.0 * t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(0xD15EA5E)
    }

    fn mean_var(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let s: Vec<f64> = (0..100_000).map(|_| normal(&mut r, 5.0, 2.0)).collect();
        let (m, v) = mean_var(&s);
        assert!((m - 5.0).abs() < 0.05, "mean {m}");
        assert!((v - 4.0).abs() < 0.15, "var {v}");
    }

    #[test]
    fn log_normal_positive_and_median() {
        let mut r = rng();
        let mut s: Vec<f64> = (0..50_001).map(|_| log_normal(&mut r, 1.0, 0.5)).collect();
        assert!(s.iter().all(|&x| x > 0.0));
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = s[s.len() / 2];
        // median of lognormal is exp(mu)
        assert!((median - 1f64.exp()).abs() < 0.1, "median {median}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let s: Vec<f64> = (0..100_000).map(|_| exponential(&mut r, 0.25)).collect();
        let (m, _) = mean_var(&s);
        assert!((m - 4.0).abs() < 0.1, "mean {m}");
        assert!(s.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn pareto_bounds_and_tail() {
        let mut r = rng();
        let s: Vec<f64> = (0..100_000).map(|_| pareto(&mut r, 2.0, 1.5)).collect();
        assert!(s.iter().all(|&x| x >= 2.0));
        // For alpha=1.5, P(X > 8) = (2/8)^1.5 = 0.125^... = (0.25)^1.5 = 0.125
        let tail = s.iter().filter(|&&x| x > 8.0).count() as f64 / s.len() as f64;
        assert!((tail - 0.125).abs() < 0.01, "tail {tail}");
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut r = rng();
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn poisson_small_lambda_moments() {
        let mut r = rng();
        let s: Vec<f64> = (0..100_000).map(|_| poisson(&mut r, 3.5) as f64).collect();
        let (m, v) = mean_var(&s);
        assert!((m - 3.5).abs() < 0.05, "mean {m}");
        assert!((v - 3.5).abs() < 0.15, "var {v}");
    }

    #[test]
    fn poisson_large_lambda_moments() {
        let mut r = rng();
        let s: Vec<f64> = (0..50_000).map(|_| poisson(&mut r, 400.0) as f64).collect();
        let (m, v) = mean_var(&s);
        assert!((m - 400.0).abs() < 0.5, "mean {m}");
        assert!((v - 400.0).abs() < 10.0, "var {v}");
    }

    #[test]
    fn binomial_edges() {
        let mut r = rng();
        assert_eq!(binomial(&mut r, 0, 0.5), 0);
        assert_eq!(binomial(&mut r, 10, 0.0), 0);
        assert_eq!(binomial(&mut r, 10, 1.0), 10);
    }

    #[test]
    fn binomial_small_n_moments() {
        let mut r = rng();
        let s: Vec<f64> = (0..100_000).map(|_| binomial(&mut r, 20, 0.3) as f64).collect();
        let (m, v) = mean_var(&s);
        assert!((m - 6.0).abs() < 0.05, "mean {m}");
        assert!((v - 4.2).abs() < 0.15, "var {v}");
    }

    #[test]
    fn binomial_poisson_regime() {
        let mut r = rng();
        // n large, p tiny -> Poisson limit
        let s: Vec<f64> = (0..50_000)
            .map(|_| binomial(&mut r, 1_000_000, 5e-6) as f64)
            .collect();
        let (m, v) = mean_var(&s);
        assert!((m - 5.0).abs() < 0.1, "mean {m}");
        assert!((v - 5.0).abs() < 0.3, "var {v}");
    }

    #[test]
    fn binomial_normal_regime_bounded() {
        let mut r = rng();
        for _ in 0..10_000 {
            let x = binomial(&mut r, 1000, 0.5);
            assert!(x <= 1000);
        }
    }

    #[test]
    fn zipf_rank0_most_probable() {
        let z = Zipf::new(100, 1.0);
        let mut r = rng();
        let mut counts = vec![0usize; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[10]);
        // Zipf s=1: p(rank1)/p(rank2) = 2
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((ratio - 2.0).abs() < 0.25, "ratio {ratio}");
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(50, 1.2);
        let total: f64 = (0..50).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(z.pmf(50), 0.0);
    }

    #[test]
    fn zipf_single_rank() {
        let z = Zipf::new(1, 2.0);
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(z.sample(&mut r), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_rejects_zero() {
        Zipf::new(0, 1.0);
    }

    #[test]
    fn smoothstep_shape() {
        assert_eq!(smoothstep(-1.0), 0.0);
        assert_eq!(smoothstep(0.0), 0.0);
        assert!((smoothstep(0.5) - 0.5).abs() < 1e-12);
        assert_eq!(smoothstep(1.0), 1.0);
        assert_eq!(smoothstep(2.0), 1.0);
        assert!(smoothstep(0.25) < 0.25); // ease-in
        assert!(smoothstep(0.75) > 0.75); // ease-out
    }

    #[test]
    fn lerp_basics() {
        assert_eq!(lerp(0.0, 10.0, 0.0), 0.0);
        assert_eq!(lerp(0.0, 10.0, 1.0), 10.0);
        assert_eq!(lerp(2.0, 4.0, 0.5), 3.0);
    }
}
