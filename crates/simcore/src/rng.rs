//! Deterministic pseudo-random number generation for the simulation.
//!
//! The whole study must be reproducible from a single `u64` seed: the same
//! seed must yield the same attack population, the same observatory
//! verdicts and therefore the same figures. We use `xoshiro256**`
//! (public-domain, Blackman & Vigna) seeded through SplitMix64, the
//! combination recommended by the xoshiro authors. The generator supports
//! cheap *forking* into independent substreams so that independently
//! evolving model components (attack arrivals, target selection, per-
//! observatory noise) do not perturb each other when one component draws
//! a different number of variates.

/// SplitMix64 step. Used for seeding and for deriving fork seeds.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic `xoshiro256**` PRNG.
///
/// Not cryptographically secure — this is a simulation generator. All
/// stochastic model components take a `&mut SimRng`; nothing in the
/// workspace draws from OS entropy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Create a generator from a seed. Any seed (including 0) is valid;
    /// SplitMix64 expansion guarantees a non-degenerate state.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derive an independent substream labeled by `tag`.
    ///
    /// Forking hashes the current state together with the tag, so two
    /// forks with different tags are decorrelated, and forking does not
    /// advance the parent stream (call sites remain insensitive to the
    /// *order* in which sibling components are constructed).
    pub fn fork(&self, tag: u64) -> SimRng {
        let mut sm = self.s[0] ^ self.s[1].rotate_left(17) ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Fork with a string label; convenient for naming model components.
    pub fn fork_named(&self, name: &str) -> SimRng {
        self.fork(fnv1a64(name.as_bytes()))
    }

    /// Next raw 64 bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32 bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in the half-open interval `[lo, hi)`.
    #[inline]
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.f64()
    }

    /// Unbiased uniform integer in `[0, n)` via Lemire's method.
    /// `n` must be non-zero.
    #[inline]
    pub fn u64_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn u64_range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.u64_below(hi - lo + 1)
    }

    /// Uniform `usize` in `[0, n)`.
    #[inline]
    pub fn usize_below(&mut self, n: usize) -> usize {
        self.u64_below(n as u64) as usize
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Choose a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose on empty slice");
        &items[self.usize_below(items.len())]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.usize_below(i + 1);
            items.swap(i, j);
        }
    }

    /// Sample `k` distinct indices out of `[0, n)` (k <= n) using a
    /// partial Fisher–Yates over an index map; O(k) memory for small k.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} of {n}");
        // For small k relative to n, rejection sampling on a set is
        // cheaper; for large k, do a full shuffle.
        if k * 4 <= n {
            let mut out = Vec::with_capacity(k);
            let mut seen = std::collections::HashSet::with_capacity(k * 2);
            while out.len() < k {
                let i = self.usize_below(n);
                if seen.insert(i) {
                    out.push(i);
                }
            }
            out
        } else {
            let mut idx: Vec<usize> = (0..n).collect();
            self.shuffle(&mut idx);
            idx.truncate(k);
            idx
        }
    }

    /// Weighted index selection proportional to `weights` (all finite,
    /// non-negative, not all zero).
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "weights must sum to a positive finite value"
        );
        let mut target = self.f64() * total;
        for (i, w) in weights.iter().enumerate() {
            target -= w;
            if target < 0.0 {
                return i;
            }
        }
        weights.len() - 1 // numerical fallback
    }
}

/// FNV-1a 64-bit hash, used to derive fork tags from names.
#[inline]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut r = SimRng::new(0);
        let x = r.next_u64();
        let y = r.next_u64();
        assert_ne!(x, 0);
        assert_ne!(x, y);
    }

    #[test]
    fn fork_does_not_advance_parent() {
        let a = SimRng::new(7);
        let before = a.clone();
        let _child = a.fork(99);
        assert_eq!(a, before);
    }

    #[test]
    fn forks_with_different_tags_differ() {
        let r = SimRng::new(7);
        let mut c1 = r.fork(1);
        let mut c2 = r.fork(2);
        let same = (0..100).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_named_matches_tagged_fork() {
        let r = SimRng::new(7);
        let mut by_name = r.fork_named("attacks");
        let mut by_tag = r.fork(fnv1a64(b"attacks"));
        assert_eq!(by_name.next_u64(), by_tag.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = SimRng::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn u64_below_bounds_and_coverage() {
        let mut r = SimRng::new(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let x = r.u64_below(7);
            assert!(x < 7);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn u64_range_inclusive() {
        let mut r = SimRng::new(5);
        let mut hit_lo = false;
        let mut hit_hi = false;
        for _ in 0..2000 {
            let x = r.u64_range(10, 12);
            assert!((10..=12).contains(&x));
            hit_lo |= x == 10;
            hit_hi |= x == 12;
        }
        assert!(hit_lo && hit_hi);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_rate_close_to_p() {
        let mut r = SimRng::new(17);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.chance(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(9);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>()); // astronomically unlikely
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut r = SimRng::new(13);
        for &(n, k) in &[(100usize, 5usize), (100, 80), (10, 10), (1, 1), (50, 0)] {
            let s = r.sample_indices(n, k);
            assert_eq!(s.len(), k);
            let set: std::collections::HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), k, "duplicates for n={n} k={k}");
            assert!(s.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = SimRng::new(21);
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[r.weighted_index(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "weights")]
    fn weighted_index_rejects_all_zero() {
        let mut r = SimRng::new(21);
        r.weighted_index(&[0.0, 0.0]);
    }

    #[test]
    fn fnv_known_value() {
        // FNV-1a("") is the offset basis.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
    }
}
