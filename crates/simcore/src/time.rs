//! Simulated time and the study calendar.
//!
//! The paper analyzes 4.5 years, 2019-01-01 through 2023-06-30, and
//! aggregates everything to *weeks* (new attacks per day, summed to weekly
//! totals, §5). This module provides a minimal proleptic-Gregorian
//! calendar (no leap seconds, UTC only) sufficient for day/week/quarter
//! bucketing, plus the study constants.

use serde::{Deserialize, Serialize};

/// Seconds since the study epoch, 2019-01-01 00:00:00 UTC.
///
/// A thin newtype so that raw second counts, day indices and week indices
/// cannot be mixed up silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SimTime(pub i64);

pub const SECS_PER_MIN: i64 = 60;
pub const SECS_PER_HOUR: i64 = 3600;
pub const SECS_PER_DAY: i64 = 86_400;
pub const SECS_PER_WEEK: i64 = 7 * SECS_PER_DAY;

/// Days from civil epoch 1970-01-01 to the study epoch 2019-01-01.
/// 2019-01-01 is 17_897 days after the Unix epoch.
pub const STUDY_EPOCH_UNIX_DAYS: i64 = 17_897;

/// The study covers 2019-01-01 (inclusive) .. 2023-07-01 (exclusive):
/// 4.5 years. 2020 is a leap year, so that is 365*4 + 366 - 365 + 181 =
/// 1642 days = 234 full weeks + 4 days.
pub const STUDY_DAYS: i64 = 1642;
pub const STUDY_WEEKS: usize = 235; // 234 full + 1 partial trailing week

/// Study start (t = 0).
pub const STUDY_START: SimTime = SimTime(0);
/// One second past the last covered instant.
pub const STUDY_END: SimTime = SimTime(STUDY_DAYS * SECS_PER_DAY);

impl SimTime {
    /// Construct from whole days since the study epoch.
    pub const fn from_days(days: i64) -> Self {
        SimTime(days * SECS_PER_DAY)
    }

    /// Construct from whole study weeks.
    pub const fn from_weeks(weeks: i64) -> Self {
        SimTime(weeks * SECS_PER_WEEK)
    }

    /// Day index since the study epoch (floor).
    pub const fn day_index(self) -> i64 {
        self.0.div_euclid(SECS_PER_DAY)
    }

    /// Week index since the study epoch (floor). Week 0 starts on
    /// 2019-01-01 (a Tuesday); the paper's weekly buckets are likewise
    /// anchored to the start of its observation window.
    pub const fn week_index(self) -> i64 {
        self.0.div_euclid(SECS_PER_WEEK)
    }

    /// Seconds elapsed within the current day.
    pub const fn second_of_day(self) -> i64 {
        self.0.rem_euclid(SECS_PER_DAY)
    }

    /// Is this instant inside the study window?
    pub const fn in_study(self) -> bool {
        self.0 >= 0 && self.0 < STUDY_DAYS * SECS_PER_DAY
    }

    /// Civil calendar date of this instant.
    pub fn date(self) -> Date {
        Date::from_unix_days(STUDY_EPOCH_UNIX_DAYS + self.day_index())
    }

    /// Offset by a number of seconds.
    pub const fn plus_secs(self, secs: i64) -> Self {
        SimTime(self.0 + secs)
    }

    /// Offset by a number of days.
    pub const fn plus_days(self, days: i64) -> Self {
        SimTime(self.0 + days * SECS_PER_DAY)
    }

    /// Fractional years since the study epoch (365.25-day years); used by
    /// the trend timeline.
    pub fn years_f64(self) -> f64 {
        self.0 as f64 / (365.25 * SECS_PER_DAY as f64)
    }

    /// Quarter index since 2019Q1 (0 = 2019Q1, 4 = 2020Q1, ...).
    pub fn quarter_index(self) -> i64 {
        let d = self.date();
        (d.year as i64 - 2019) * 4 + ((d.month as i64 - 1) / 3)
    }
}

/// A civil (proleptic Gregorian) date.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Date {
    pub year: i32,
    pub month: u8,
    pub day: u8,
}

impl Date {
    pub const fn new(year: i32, month: u8, day: u8) -> Self {
        Date { year, month, day }
    }

    /// Days since the Unix epoch → civil date.
    /// Howard Hinnant's `civil_from_days` algorithm.
    pub fn from_unix_days(z: i64) -> Date {
        let z = z + 719_468;
        let era = z.div_euclid(146_097);
        let doe = z.rem_euclid(146_097); // [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11]
        let d = (doy - (153 * mp + 2) / 5 + 1) as u8; // [1, 31]
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8; // [1, 12]
        Date {
            year: (if m <= 2 { y + 1 } else { y }) as i32,
            month: m,
            day: d,
        }
    }

    /// Civil date → days since the Unix epoch.
    /// Howard Hinnant's `days_from_civil` algorithm.
    pub fn to_unix_days(self) -> i64 {
        let y = self.year as i64 - if self.month <= 2 { 1 } else { 0 };
        let m = self.month as i64;
        let d = self.day as i64;
        let era = if y >= 0 { y } else { y - 399 }.div_euclid(400);
        let yoe = y - era * 400; // [0, 399]
        let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        era * 146_097 + doe - 719_468
    }

    /// The SimTime of midnight (start) of this date.
    pub fn to_sim_time(self) -> SimTime {
        SimTime::from_days(self.to_unix_days() - STUDY_EPOCH_UNIX_DAYS)
    }

    /// ISO-ish label, e.g. "2021-03-07".
    pub fn to_string_iso(self) -> String {
        format!("{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }

    /// Quarter (1..=4) of this date.
    pub const fn quarter(self) -> u8 {
        (self.month - 1) / 3 + 1
    }

    /// Label like "2021Q2".
    pub fn quarter_label(self) -> String {
        format!("{}Q{}", self.year, self.quarter())
    }
}

impl std::fmt::Display for Date {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_string_iso())
    }
}

/// Known law-enforcement takedown dates marked in the paper's Figure 3
/// (per seizure warrants: 2022-12-13 and 2023-05-04).
pub fn takedown_dates() -> [Date; 2] {
    [Date::new(2022, 12, 13), Date::new(2023, 5, 4)]
}

/// The first `n` week indices of the study, used as the normalization
/// baseline window (the paper normalizes to the median of the first 15
/// weeks, §5).
pub const BASELINE_WEEKS: usize = 15;

/// Label (start date) of a study week.
pub fn week_start_date(week: i64) -> Date {
    SimTime::from_weeks(week).date()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_2019_01_01() {
        assert_eq!(SimTime(0).date(), Date::new(2019, 1, 1));
    }

    #[test]
    fn study_days_constant_matches_calendar() {
        let end = Date::new(2023, 7, 1);
        assert_eq!(end.to_unix_days() - STUDY_EPOCH_UNIX_DAYS, STUDY_DAYS);
    }

    #[test]
    fn study_weeks_covers_days() {
        assert_eq!(STUDY_WEEKS, (STUDY_DAYS as usize).div_ceil(7));
    }

    #[test]
    fn date_roundtrip_over_study() {
        for d in 0..STUDY_DAYS {
            let date = SimTime::from_days(d).date();
            assert_eq!(date.to_unix_days() - STUDY_EPOCH_UNIX_DAYS, d);
        }
    }

    #[test]
    fn leap_day_2020() {
        let feb29 = Date::new(2020, 2, 29);
        let t = feb29.to_sim_time();
        assert_eq!(t.date(), feb29);
        assert_eq!(t.plus_days(1).date(), Date::new(2020, 3, 1));
    }

    #[test]
    fn non_leap_2019() {
        let feb28 = Date::new(2019, 2, 28).to_sim_time();
        assert_eq!(feb28.plus_days(1).date(), Date::new(2019, 3, 1));
    }

    #[test]
    fn week_index_boundaries() {
        assert_eq!(SimTime(0).week_index(), 0);
        assert_eq!(SimTime(SECS_PER_WEEK - 1).week_index(), 0);
        assert_eq!(SimTime(SECS_PER_WEEK).week_index(), 1);
        assert_eq!(SimTime(-1).week_index(), -1);
    }

    #[test]
    fn day_index_and_second_of_day() {
        let t = SimTime(3 * SECS_PER_DAY + 5);
        assert_eq!(t.day_index(), 3);
        assert_eq!(t.second_of_day(), 5);
    }

    #[test]
    fn in_study_bounds() {
        assert!(STUDY_START.in_study());
        assert!(SimTime(STUDY_END.0 - 1).in_study());
        assert!(!STUDY_END.in_study());
        assert!(!SimTime(-1).in_study());
    }

    #[test]
    fn quarter_indexing() {
        assert_eq!(Date::new(2019, 1, 1).to_sim_time().quarter_index(), 0);
        assert_eq!(Date::new(2019, 4, 1).to_sim_time().quarter_index(), 1);
        assert_eq!(Date::new(2020, 1, 1).to_sim_time().quarter_index(), 4);
        assert_eq!(Date::new(2023, 6, 30).to_sim_time().quarter_index(), 17);
    }

    #[test]
    fn quarter_labels() {
        assert_eq!(Date::new(2021, 5, 2).quarter_label(), "2021Q2");
        assert_eq!(Date::new(2023, 12, 31).quarter_label(), "2023Q4");
    }

    #[test]
    fn takedowns_inside_study() {
        for d in takedown_dates() {
            assert!(d.to_sim_time().in_study());
        }
    }

    #[test]
    fn years_f64_monotone() {
        assert!(SimTime::from_days(365).years_f64() > 0.99);
        assert!(SimTime::from_days(365).years_f64() < 1.01);
    }

    #[test]
    fn display_format() {
        assert_eq!(Date::new(2020, 3, 7).to_string(), "2020-03-07");
    }

    #[test]
    fn week_start_dates_monotone() {
        let mut prev = week_start_date(0).to_unix_days();
        for w in 1..STUDY_WEEKS as i64 {
            let cur = week_start_date(w).to_unix_days();
            assert_eq!(cur - prev, 7);
            prev = cur;
        }
    }
}
