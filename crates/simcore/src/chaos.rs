//! Seeded control-plane fault injection.
//!
//! A [`ChaosSchedule`] decides, from `(seed, site, unit)` alone, whether a
//! given unit of work fails and how many times. Because the decision is a
//! pure hash of *logical* identity — a pool shard index, a stage
//! fingerprint — and never of thread identity or timing, the same
//! schedule injects the same panics at the same places on every run and
//! for every worker count. Combined with the bounded retry in
//! [`crate::recover`], a site scheduled to fail fewer than
//! [`crate::recover::MAX_ATTEMPTS`] times recovers to the identical value
//! it would have produced with chaos off, which is what lets the
//! byte-identical-output invariant hold *under* injected faults.

use crate::recover::MAX_ATTEMPTS;
use crate::rng::{fnv1a64, SimRng};
use std::sync::{Arc, OnceLock};

/// Deterministic schedule of injected control-plane failures.
///
/// `Copy` on purpose: `ExecPool` stays `Copy` with a schedule embedded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosSchedule {
    /// Seed for the site/unit hash; independent of the study seed.
    pub seed: u64,
    /// Probability that a given `(site, unit)` is scheduled to fail.
    pub probability: f64,
    /// How many consecutive attempts fail at a scheduled site.
    /// `>= MAX_ATTEMPTS` makes the failure permanent.
    pub failures_per_site: u32,
}

fn injected_counter() -> &'static Arc<obs::metrics::Counter> {
    static C: OnceLock<Arc<obs::metrics::Counter>> = OnceLock::new();
    C.get_or_init(|| obs::metrics::counter("fault.injected"))
}

impl ChaosSchedule {
    /// Number of failing attempts scheduled for this `(site, unit)`.
    pub fn failures_at(&self, site: &str, unit: u64) -> u32 {
        if self.probability <= 0.0 || self.failures_per_site == 0 {
            return 0;
        }
        let mut rng = SimRng::new(self.seed ^ fnv1a64(site.as_bytes())).fork(unit);
        if rng.chance(self.probability) {
            self.failures_per_site
        } else {
            0
        }
    }

    /// True when the schedule makes some sites fail past the retry budget.
    pub fn is_permanent(&self) -> bool {
        self.failures_per_site >= MAX_ATTEMPTS
    }

    /// Panic iff this `(site, unit, attempt)` is scheduled to fail.
    ///
    /// Call this at the top of a recovery-wrapped computation; the panic
    /// message carries the site so the retry layer and test assertions
    /// can tell injected faults from organic ones.
    pub fn maybe_fail(&self, site: &str, unit: u64, attempt: u32) {
        if attempt < self.failures_at(site, unit) {
            injected_counter().inc();
            panic!("chaos: injected failure at {site}[{unit:#018x}] attempt {attempt}");
        }
    }
}

/// Registry of injection sites wired into production code paths.
///
/// Site labels feed both the `(seed, site, unit)` failure hash and the
/// `chaos.caught.*` / `chaos.recovered.*` trace instants, so they are
/// part of the reproducibility surface: renaming one silently reshuffles
/// which units fail under a given seed. Declaring them here keeps the
/// label set reviewable and lets tests assert coverage. (Tests may use
/// ad-hoc labels; production call sites should use these constants.)
pub mod sites {
    /// Attack-plan stage compute (`crates/core` pipeline).
    pub const STAGE_PLAN: &str = "stage.plan";
    /// Attack-materialization stage compute.
    pub const STAGE_ATTACKS: &str = "stage.attacks";
    /// One shard closure inside [`crate::pool::ExecPool`].
    pub const POOL_SHARD: &str = "pool.shard";
    /// One grid point of a parameter sweep (`crates/core::sweep`).
    pub const SWEEP_POINT: &str = "sweep.point";
    /// One HTTP request handled by the query service (`crates/serve`).
    /// Retry budget is 1 by design: an injected panic 500s exactly that
    /// request and the worker moves on.
    pub const HTTP_REQUEST: &str = "http.request";

    /// Every registered production site.
    pub const ALL: &[&str] = &[STAGE_PLAN, STAGE_ATTACKS, POOL_SHARD, SWEEP_POINT, HTTP_REQUEST];

    /// Is `site` a registered production injection site?
    pub fn is_registered(site: &str) -> bool {
        ALL.contains(&site)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recover;

    const CS: ChaosSchedule = ChaosSchedule {
        seed: 0xC4A0,
        probability: 0.5,
        failures_per_site: 2,
    };

    #[test]
    fn schedule_is_deterministic_and_site_sensitive() {
        let mut hit = 0;
        for unit in 0..64 {
            let a = CS.failures_at("stage.plan", unit);
            assert_eq!(a, CS.failures_at("stage.plan", unit));
            assert!(a == 0 || a == 2);
            hit += u32::from(a > 0);
        }
        assert!((10..=54).contains(&hit), "p=0.5 should hit roughly half: {hit}");
        let other: u32 = (0..64).map(|u| CS.failures_at("pool.shard", u)).sum();
        assert_ne!(other, (0..64).map(|u| CS.failures_at("stage.plan", u)).sum::<u32>());
    }

    #[test]
    fn zero_probability_never_fires() {
        let cs = ChaosSchedule { probability: 0.0, ..CS };
        for unit in 0..256 {
            cs.maybe_fail("anywhere", unit, 0);
        }
    }

    #[test]
    fn transient_failures_recover_within_budget() {
        let cs = ChaosSchedule { probability: 1.0, ..CS };
        assert!(!cs.is_permanent());
        let v = recover::try_with_retry("pool.shard", |attempt| {
            cs.maybe_fail("pool.shard", 9, attempt);
            attempt
        });
        assert_eq!(v.map_err(|e| e.message), Ok(2), "fails twice then succeeds");
    }

    #[test]
    fn permanent_failures_exhaust_the_budget() {
        let cs = ChaosSchedule {
            probability: 1.0,
            failures_per_site: recover::MAX_ATTEMPTS,
            ..CS
        };
        assert!(cs.is_permanent());
        let err = recover::try_with_retry("stage.plan", |attempt| {
            cs.maybe_fail("stage.plan", 1, attempt);
        })
        .expect_err("must exhaust");
        assert!(err.message.contains("chaos: injected failure"), "{}", err.message);
    }

    #[test]
    fn site_registry_covers_production_labels() {
        for site in sites::ALL {
            assert!(sites::is_registered(site));
        }
        assert!(sites::is_registered(sites::HTTP_REQUEST));
        assert!(!sites::is_registered("anywhere"));
        // Distinct labels hash to distinct failure sets (otherwise two
        // registered sites would fail in lockstep under every seed).
        let cs = ChaosSchedule { probability: 0.5, ..CS };
        let sets: Vec<Vec<u32>> = sites::ALL
            .iter()
            .map(|s| (0..64).map(|u| cs.failures_at(s, u)).collect())
            .collect();
        for i in 0..sets.len() {
            for j in i + 1..sets.len() {
                assert_ne!(sets[i], sets[j], "sites {i} and {j} fail in lockstep");
            }
        }
    }
}
