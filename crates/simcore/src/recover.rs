//! Panic recovery and bounded deterministic retry.
//!
//! This module is the *only* place in the workspace allowed to call
//! `std::panic::catch_unwind` (enforced by repo lint rule 5). Everything
//! else that needs to survive a panicking computation — `ExecPool` shard
//! closures, stage-cache computes, per-point sweep runs, chaos tests —
//! goes through [`capture`] or [`run_with_retry`] so that recovery policy
//! (attempt budget, counters, message extraction) lives in one audited
//! spot and unwind-safety reasoning is not scattered across the tree.
//!
//! Determinism: retry is bounded by the fixed [`MAX_ATTEMPTS`] budget and
//! keyed only by the closure's own behaviour (the attempt index is passed
//! in), never by wall-clock backoff or thread identity, so a computation
//! that fails `k < MAX_ATTEMPTS` times under a seeded chaos schedule
//! recovers to the identical value on every run and worker count.

use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};

/// Total attempt budget for [`run_with_retry`] / [`try_with_retry`]: one
/// initial try plus up to two recoveries. A chaos schedule configured to
/// fail a site `>= MAX_ATTEMPTS` times is therefore a *permanent* failure.
pub const MAX_ATTEMPTS: u32 = 3;

/// A panic caught by this module, reduced to its payload message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaughtPanic {
    /// Label of the recovery site that caught the panic.
    pub site: String,
    /// The panic payload, if it was a `&str` or `String`.
    pub message: String,
}

impl std::fmt::Display for CaughtPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "panic at {}: {}", self.site, self.message)
    }
}

struct Counters {
    caught: Arc<obs::metrics::Counter>,
    recovered: Arc<obs::metrics::Counter>,
    exhausted: Arc<obs::metrics::Counter>,
}

fn counters() -> &'static Counters {
    static C: OnceLock<Counters> = OnceLock::new();
    C.get_or_init(|| Counters {
        caught: obs::metrics::counter("fault.caught"),
        recovered: obs::metrics::counter("fault.recovered"),
        exhausted: obs::metrics::counter("fault.exhausted"),
    })
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `f` once, converting a panic into `Err(CaughtPanic)`.
///
/// The closures recovered here are pure functions of their (immutable)
/// captures — shard slices, configs, fingerprints — so observing state
/// after an unwind cannot expose a broken invariant to the caller;
/// that is what justifies the single `AssertUnwindSafe` below.
pub fn capture<T>(site: &str, f: impl FnOnce() -> T) -> Result<T, CaughtPanic> {
    match panic::catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => Ok(v),
        Err(payload) => {
            counters().caught.inc();
            if obs::trace::enabled() {
                obs::trace::instant(format!("chaos.caught.{site}"), &[]);
            }
            Err(CaughtPanic {
                site: site.to_string(),
                message: payload_message(payload.as_ref()),
            })
        }
    }
}

/// Run `f(attempt)` up to [`MAX_ATTEMPTS`] times, returning the first
/// success. Exhaustion yields the *last* caught panic as an error.
pub fn try_with_retry<T>(site: &str, mut f: impl FnMut(u32) -> T) -> Result<T, CaughtPanic> {
    let mut last = None;
    for attempt in 0..MAX_ATTEMPTS {
        match capture(site, || f(attempt)) {
            Ok(v) => {
                if attempt > 0 {
                    counters().recovered.inc();
                    if obs::trace::enabled() {
                        obs::trace::instant(
                            format!("chaos.recovered.{site}"),
                            &[("attempt", u64::from(attempt))],
                        );
                    }
                }
                return Ok(v);
            }
            Err(caught) => last = Some(caught),
        }
    }
    counters().exhausted.inc();
    Err(last.expect("MAX_ATTEMPTS > 0 guarantees at least one attempt"))
}

/// Like [`try_with_retry`], but re-raises the final panic when the
/// attempt budget is exhausted, for call sites whose error contract is
/// "propagate the panic" (stage-cache computes inside `OnceLock` cells).
pub fn run_with_retry<T>(site: &str, f: impl FnMut(u32) -> T) -> T {
    match try_with_retry(site, f) {
        Ok(v) => v,
        Err(caught) => panic!("{caught} (gave up after {MAX_ATTEMPTS} attempts)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn capture_returns_value_or_message() {
        assert_eq!(capture("t", || 41 + 1), Ok(42));
        let err = capture::<()>("t", || panic!("boom {}", 7)).expect_err("must catch");
        assert_eq!(err.message, "boom 7");
        assert_eq!(err.site, "t");
    }

    #[test]
    fn retry_recovers_transient_failures() {
        let calls = AtomicU32::new(0);
        let v = try_with_retry("t", |attempt| {
            calls.fetch_add(1, Ordering::Relaxed);
            assert!(attempt >= 2, "fails twice, succeeds on third: {attempt}");
            attempt
        });
        assert_eq!(v, Ok(2));
        assert_eq!(calls.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn retry_exhausts_after_max_attempts() {
        let calls = AtomicU32::new(0);
        let err = try_with_retry::<()>("t", |_| {
            calls.fetch_add(1, Ordering::Relaxed);
            panic!("always");
        })
        .expect_err("permanent failure must exhaust");
        assert_eq!(calls.load(Ordering::Relaxed), MAX_ATTEMPTS);
        assert_eq!(err.message, "always");
    }

    #[test]
    fn run_with_retry_repanics_with_site_label() {
        let err = capture("outer", || run_with_retry::<()>("inner", |_| panic!("nope")))
            .expect_err("must propagate");
        assert!(err.message.contains("inner"), "{}", err.message);
        assert!(err.message.contains("nope"), "{}", err.message);
    }
}
