//! Data-plane fault primitives: outage windows, sensor-fleet churn and
//! flow-sampling degradation.
//!
//! The real observatories behind the paper were never clean — telescopes
//! had dark weeks, honeypot fleets declined and churned over the
//! 4.5-year window, and flow platforms changed coverage. These types let
//! a study deterministically reproduce such gaps: each observatory
//! carries an [`ObsFaults`] (empty by default) that its `observe` path
//! consults.
//!
//! Determinism contract: an **empty** `ObsFaults` consumes *zero* RNG and
//! takes no float path, so attaching it is bit-for-bit invisible. When
//! faults are present, every stochastic decision forks a *dedicated*
//! stream (churn from its own seed, sampling drops from a per-attack
//! fork), so the main observation streams are structurally untouched and
//! the output stays byte-identical for any worker count.

use crate::rng::SimRng;
use crate::time::STUDY_WEEKS;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, OnceLock};

/// Weeks per year in the study calendar, for fleet-decline scaling.
const WEEKS_PER_YEAR: f64 = 365.25 / 7.0;

/// A half-open `[start_week, end_week)` window during which an
/// observatory records nothing at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutageWindow {
    pub start_week: u32,
    pub end_week: u32,
}

impl OutageWindow {
    pub fn contains(&self, week: i64) -> bool {
        week >= i64::from(self.start_week) && week < i64::from(self.end_week)
    }
}

/// Honeypot sensor-fleet decay: a secular decline plus weekly churn.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorChurn {
    /// Fraction of the fleet lost per year of study time (linear decay,
    /// clamped at zero).
    pub decline_per_year: f64,
    /// Upper bound on the fraction of surviving sensors offline in any
    /// given week; the actual fraction is drawn uniformly per week.
    pub offline_weekly: f64,
    /// Seed for the per-week churn draw, independent of the study seed.
    pub seed: u64,
}

impl SensorChurn {
    /// Fleet size at `week` given a nominal size of `sensors`.
    ///
    /// Per-week draws fork from `seed` by week index alone, so the value
    /// is identical no matter which worker evaluates it or how many
    /// attacks precede it.
    pub fn fleet_at(&self, sensors: u64, week: i64) -> u64 {
        let years = week.max(0) as f64 / WEEKS_PER_YEAR;
        let survival = (1.0 - self.decline_per_year * years).clamp(0.0, 1.0);
        let mut rng = SimRng::new(self.seed).fork(week.max(0) as u64);
        let offline = rng.f64_range(0.0, self.offline_weekly.clamp(0.0, 1.0));
        ((sensors as f64) * survival * (1.0 - offline)).floor() as u64
    }
}

/// Flow-platform sampling degradation: from `start_week` on, each
/// would-be observation is independently lost with `drop_fraction`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowDegradation {
    pub drop_fraction: f64,
    pub start_week: u32,
}

/// The resolved fault set one observatory consults while observing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsFaults {
    pub outages: Vec<OutageWindow>,
    pub churn: Option<SensorChurn>,
    pub degradation: Option<FlowDegradation>,
}

struct Counters {
    outage_drops: Arc<obs::metrics::Counter>,
    sampling_drops: Arc<obs::metrics::Counter>,
}

fn counters() -> &'static Counters {
    static C: OnceLock<Counters> = OnceLock::new();
    C.get_or_init(|| Counters {
        outage_drops: obs::metrics::counter("fault.outage_drops"),
        sampling_drops: obs::metrics::counter("fault.sampling_drops"),
    })
}

impl ObsFaults {
    pub fn is_empty(&self) -> bool {
        self.outages.is_empty() && self.churn.is_none() && self.degradation.is_none()
    }

    /// True when `week` falls inside an outage window. Counts the drop;
    /// call sites return `None` immediately, before forking any RNG.
    pub fn is_down(&self, week: i64) -> bool {
        if self.outages.iter().any(|w| w.contains(week)) {
            counters().outage_drops.inc();
            return true;
        }
        false
    }

    /// Effective sensor-fleet size at `week`. Identity when no churn is
    /// configured — the integer passes through untouched, so the
    /// downstream binomial draw is bit-identical to the fault-free path.
    pub fn fleet_at(&self, sensors: u64, week: i64) -> u64 {
        match &self.churn {
            None => sensors,
            Some(c) => c.fleet_at(sensors, week),
        }
    }

    /// True when sampling degradation swallows this observation.
    ///
    /// Draws from a dedicated `(attack, "fault-sampling")` fork of
    /// `root`, never from the observatory's own stream.
    pub fn drops_sample(&self, root: &SimRng, attack_tag: u64, week: i64) -> bool {
        let Some(d) = &self.degradation else {
            return false;
        };
        if week < i64::from(d.start_week) {
            return false;
        }
        let mut rng = root.fork(attack_tag).fork_named("fault-sampling");
        if rng.chance(d.drop_fraction) {
            counters().sampling_drops.inc();
            return true;
        }
        false
    }

    /// Week indices `< STUDY_WEEKS` masked out by outage windows, sorted
    /// and deduplicated; the degraded-weeks manifest section and the
    /// analytics missing-week masks both derive from this.
    pub fn masked_weeks(&self) -> Vec<u64> {
        let mut weeks: Vec<u64> = self
            .outages
            .iter()
            .flat_map(|w| u64::from(w.start_week)..u64::from(w.end_week.min(STUDY_WEEKS as u32)))
            .collect();
        weeks.sort_unstable();
        weeks.dedup();
        weeks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_faults_are_inert() {
        let f = ObsFaults::default();
        assert!(f.is_empty());
        assert!(!f.is_down(0));
        assert_eq!(f.fleet_at(1200, 100), 1200);
        let root = SimRng::new(7);
        assert!(!f.drops_sample(&root, 42, 100));
        assert!(f.masked_weeks().is_empty());
    }

    #[test]
    fn outage_windows_are_half_open() {
        let f = ObsFaults {
            outages: vec![OutageWindow { start_week: 10, end_week: 12 }],
            ..ObsFaults::default()
        };
        assert!(!f.is_down(9));
        assert!(f.is_down(10));
        assert!(f.is_down(11));
        assert!(!f.is_down(12));
        assert_eq!(f.masked_weeks(), vec![10, 11]);
    }

    #[test]
    fn fleet_declines_deterministically() {
        let churn = SensorChurn { decline_per_year: 0.1, offline_weekly: 0.05, seed: 3 };
        let early = churn.fleet_at(1000, 0);
        let late = churn.fleet_at(1000, 200);
        assert_eq!(early, churn.fleet_at(1000, 0), "per-week draw must be stable");
        assert!(late < early, "fleet must decline: {late} vs {early}");
        assert!(early <= 1000 && late > 500);
    }

    #[test]
    fn sampling_drops_are_per_attack_and_gated_by_start_week() {
        let f = ObsFaults {
            degradation: Some(FlowDegradation { drop_fraction: 0.5, start_week: 100 }),
            ..ObsFaults::default()
        };
        let root = SimRng::new(11);
        assert!(!f.drops_sample(&root, 1, 99), "before start_week nothing drops");
        let dropped = (0..200).filter(|&a| f.drops_sample(&root, a, 150)).count();
        assert!((40..=160).contains(&dropped), "roughly half drop: {dropped}");
        for a in 0..20 {
            assert_eq!(f.drops_sample(&root, a, 150), f.drops_sample(&root, a, 150));
        }
    }
}
