//! `simcore` — deterministic simulation substrate for the ddoscovery
//! reproduction.
//!
//! Provides the three ingredients every other crate builds on:
//!
//! * [`rng::SimRng`] — a forkable, deterministic PRNG so the entire
//!   4.5-year study reproduces bit-for-bit from one seed;
//! * [`time`] — the study calendar (2019-01-01 … 2023-06-30), day/week/
//!   quarter bucketing exactly as the paper aggregates (§5);
//! * [`dist`] — the statistical distributions behind attack arrivals,
//!   sizes, durations and observatory visibility sampling.

pub mod dist;
pub mod rng;
pub mod time;

pub use dist::Zipf;
pub use rng::SimRng;
pub use time::{Date, SimTime, BASELINE_WEEKS, STUDY_DAYS, STUDY_END, STUDY_START, STUDY_WEEKS};
