//! `simcore` — deterministic simulation substrate for the ddoscovery
//! reproduction.
//!
//! Provides the three ingredients every other crate builds on:
//!
//! * [`rng::SimRng`] — a forkable, deterministic PRNG so the entire
//!   4.5-year study reproduces bit-for-bit from one seed;
//! * [`time`] — the study calendar (2019-01-01 … 2023-06-30), day/week/
//!   quarter bucketing exactly as the paper aggregates (§5);
//! * [`dist`] — the statistical distributions behind attack arrivals,
//!   sizes, durations and observatory visibility sampling;
//! * [`pool`] — the deterministic sharded execution pool that fans the
//!   study out across workers without perturbing any RNG stream;
//! * [`faults`] — data-plane fault primitives (outage windows, sensor
//!   churn, sampling degradation) the observatories consult;
//! * [`chaos`] + [`recover`] — seeded control-plane fault injection and
//!   the workspace's only sanctioned panic-capture + bounded-retry home.

pub mod chaos;
pub mod dist;
pub mod faults;
pub mod pool;
pub mod recover;
pub mod rng;
pub mod time;

pub use chaos::ChaosSchedule;
pub use dist::Zipf;
pub use faults::{FlowDegradation, ObsFaults, OutageWindow, SensorChurn};
pub use pool::ExecPool;
pub use rng::SimRng;
pub use time::{Date, SimTime, BASELINE_WEEKS, STUDY_DAYS, STUDY_END, STUDY_START, STUDY_WEEKS};
