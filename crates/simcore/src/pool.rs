//! Deterministic sharded execution pool.
//!
//! The whole study pipeline is embarrassingly parallel *as long as* no
//! worker ever touches shared RNG state: every stochastic component
//! forks its `SimRng` from immutable inputs (attack id, observatory
//! name, week index) before work is distributed. `ExecPool` exploits
//! that by splitting an input slice into index-tagged shards, letting
//! workers claim shards in whatever order the scheduler likes, and then
//! merging results back **in shard order** — so the output is bitwise
//! identical for 1, 2, or N workers.
//!
//! The pool is intentionally stateless (no resident worker threads):
//! each call opens a `std::thread::scope`, which makes it trivially
//! reentrant — a sweep thread can run a nested study fan-out on the
//! same pool handle without deadlock. Crossbeam/rayon would provide a
//! persistent work-stealing pool, but those crates are unavailable in
//! the offline build; scoped std threads cost one spawn per worker per
//! call, which is noise next to the millisecond-scale shards we feed
//! them.

use crate::chaos::{self, ChaosSchedule};
use crate::recover::{self, CaughtPanic};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Pool telemetry handles, fetched from the global registry once. Pure
/// side channel (see `obs`): recording never influences scheduling,
/// shard order, or results.
struct PoolMetrics {
    /// Fan-out calls that actually went parallel.
    calls: Arc<obs::metrics::Counter>,
    /// Shards dispatched across all calls (serial ones included).
    tasks: Arc<obs::metrics::Counter>,
    /// Per-worker busy time per parallel fan-out call.
    busy_ns: Arc<obs::metrics::Histogram>,
    /// max/mean worker busy time of the latest parallel fan-out — 1.0
    /// is a perfectly balanced call.
    imbalance: Arc<obs::metrics::Gauge>,
}

impl PoolMetrics {
    fn get() -> &'static PoolMetrics {
        static M: OnceLock<PoolMetrics> = OnceLock::new();
        M.get_or_init(|| PoolMetrics {
            calls: obs::metrics::counter("pool.calls"),
            tasks: obs::metrics::counter("pool.tasks"),
            busy_ns: obs::metrics::histogram("pool.worker_busy_ns", &obs::metrics::LATENCY_NS),
            imbalance: obs::metrics::gauge("pool.imbalance"),
        })
    }
}

/// Environment variable overriding the default worker count.
pub const WORKERS_ENV: &str = "DDOSCOVERY_WORKERS";

/// A stateless fork-join pool with a fixed worker budget.
///
/// An optional [`ChaosSchedule`] injects deterministic panics into shard
/// closures; each shard then runs under the bounded retry in
/// [`recover`], and a shard whose failures outlast the retry budget
/// surfaces as a panic on the **lowest failing shard index** after the
/// deterministic merge — never on whichever worker thread lost the race
/// — so even the failure mode is independent of the worker count.
#[derive(Debug, Clone, Copy)]
pub struct ExecPool {
    workers: usize,
    chaos: Option<ChaosSchedule>,
}

impl ExecPool {
    /// A pool with exactly `workers` workers (clamped to ≥ 1).
    pub fn new(workers: usize) -> ExecPool {
        ExecPool { workers: workers.max(1), chaos: None }
    }

    /// The same pool with a chaos schedule attached to every shard.
    pub fn with_chaos(mut self, schedule: ChaosSchedule) -> ExecPool {
        self.chaos = Some(schedule);
        self
    }

    /// A single-threaded pool: every combinator degenerates to a plain
    /// serial loop.
    pub fn serial() -> ExecPool {
        ExecPool::new(1)
    }

    /// The process-wide default pool: worker count from
    /// [`WORKERS_ENV`] if set, otherwise `available_parallelism`.
    pub fn global() -> ExecPool {
        static GLOBAL: OnceLock<ExecPool> = OnceLock::new();
        *GLOBAL.get_or_init(|| ExecPool::new(default_workers()))
    }

    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Split `items` into contiguous shards of `chunk_size`, apply
    /// `f(shard_index, shard)` across workers, and return the results
    /// **in shard order** — the defining determinism guarantee: the
    /// output is a pure function of `(items, chunk_size, f)`, never of
    /// the worker count or scheduling order.
    pub fn par_chunks_indexed<T, R, F>(&self, items: &[T], chunk_size: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
    {
        let chunk_size = chunk_size.max(1);
        let chunks: Vec<&[T]> = items.chunks(chunk_size).collect();
        let metrics = PoolMetrics::get();
        metrics.tasks.add(chunks.len() as u64);
        if self.workers == 1 || chunks.len() <= 1 {
            return chunks
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    let _t = obs::trace::Guard::new("pool.shard", Some(("shard", i as u64)));
                    unwrap_shard(i, self.call_shard(i, c, &f))
                })
                .collect();
        }
        metrics.calls.inc();

        let next = AtomicUsize::new(0);
        let collected: Mutex<Vec<(usize, Result<R, CaughtPanic>)>> =
            Mutex::new(Vec::with_capacity(chunks.len()));
        let threads = self.workers.min(chunks.len());
        // Per-worker busy time, written once per worker after its loop
        // drains (slot writes are disjoint, so Relaxed is enough).
        let busy: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|scope| {
            for slot in &busy {
                let (next, collected, chunks, f) = (&next, &collected, &chunks, &f);
                scope.spawn(move || {
                    let watch = obs::Stopwatch::start();
                    // Batch each worker's results locally; one lock
                    // acquisition per worker, not per shard.
                    let mut local: Vec<(usize, Result<R, CaughtPanic>)> = Vec::new();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        let Some(chunk) = chunks.get(idx) else { break };
                        let r = {
                            let _t =
                                obs::trace::Guard::new("pool.shard", Some(("shard", idx as u64)));
                            self.call_shard(idx, chunk, &f)
                        };
                        local.push((idx, r));
                    }
                    collected
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner())
                        .extend(local);
                    slot.store(watch.elapsed_ns() as usize, Ordering::Relaxed);
                });
            }
        });
        if obs::enabled() {
            let busy_ns: Vec<u64> = busy.iter().map(|b| b.load(Ordering::Relaxed) as u64).collect();
            let max = busy_ns.iter().copied().max().unwrap_or(0);
            let mean = busy_ns.iter().sum::<u64>() as f64 / busy_ns.len().max(1) as f64;
            for ns in busy_ns {
                metrics.busy_ns.record(ns);
            }
            if mean > 0.0 {
                metrics.imbalance.set(max as f64 / mean);
            }
        }

        let mut tagged = collected
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        tagged.sort_unstable_by_key(|(idx, _)| *idx);
        debug_assert_eq!(tagged.len(), chunks.len());
        tagged.into_iter().map(|(idx, r)| unwrap_shard(idx, r)).collect()
    }

    /// Like [`ExecPool::par_chunks_indexed`], but results are folded
    /// into an accumulator **in shard order, as they become ready**,
    /// instead of being collected whole: shard `k` is handed to `fold`
    /// as soon as shards `0..=k` have all completed, and freed once
    /// consumed. When shard results are large relative to what the fold
    /// retains (e.g. columnar population shards merged into one column
    /// set), this caps the high-water mark at "accumulator + in-flight
    /// shards" instead of "accumulator + every shard". The fold runs on
    /// the calling thread concurrently with the workers; the
    /// accumulator is a pure function of `(items, chunk_size, f, fold)`
    /// — never of worker count — and a shard whose chaos retries are
    /// exhausted panics on the lowest failing shard index, exactly like
    /// the collecting combinator.
    pub fn par_chunks_fold<T, R, A, F, G>(
        &self,
        items: &[T],
        chunk_size: usize,
        f: F,
        init: A,
        mut fold: G,
    ) -> A
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
        G: FnMut(&mut A, usize, R),
    {
        let chunk_size = chunk_size.max(1);
        let chunks: Vec<&[T]> = items.chunks(chunk_size).collect();
        let metrics = PoolMetrics::get();
        metrics.tasks.add(chunks.len() as u64);
        let mut acc = init;
        if self.workers == 1 || chunks.len() <= 1 {
            for (i, c) in chunks.iter().enumerate() {
                let r = {
                    let _t = obs::trace::Guard::new("pool.shard", Some(("shard", i as u64)));
                    unwrap_shard(i, self.call_shard(i, c, &f))
                };
                fold(&mut acc, i, r);
            }
            return acc;
        }
        metrics.calls.inc();

        let next = AtomicUsize::new(0);
        let ready: Mutex<std::collections::BTreeMap<usize, Result<R, CaughtPanic>>> =
            Mutex::new(std::collections::BTreeMap::new());
        let done = std::sync::Condvar::new();
        // Set when a worker unwinds with an *organic* panic (chaos
        // panics are caught by `call_shard`): the drain loop would
        // otherwise wait forever for a result that never arrives. The
        // timed wait below rechecks this flag, the drain stops, and the
        // scope join re-raises the worker's panic.
        let worker_died = std::sync::atomic::AtomicBool::new(false);
        let threads = self.workers.min(chunks.len());
        let busy: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|scope| {
            for slot in &busy {
                let (next, ready, done, chunks, f) = (&next, &ready, &done, &chunks, &f);
                let worker_died = &worker_died;
                scope.spawn(move || {
                    let signal = SignalOnPanic(worker_died);
                    let watch = obs::Stopwatch::start();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        let Some(chunk) = chunks.get(idx) else { break };
                        let r = {
                            let _t =
                                obs::trace::Guard::new("pool.shard", Some(("shard", idx as u64)));
                            self.call_shard(idx, chunk, f)
                        };
                        ready
                            .lock()
                            .unwrap_or_else(|poisoned| poisoned.into_inner())
                            .insert(idx, r);
                        done.notify_all();
                    }
                    slot.store(watch.elapsed_ns() as usize, Ordering::Relaxed);
                    drop(signal);
                });
            }
            // Drain results in shard order while workers keep producing.
            'drain: for want in 0..chunks.len() {
                let r = {
                    let mut buf = ready.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
                    match buf.remove(&want) {
                        Some(r) => r,
                        None => {
                            // The next in-order shard isn't ready: the
                            // reorder buffer blocks here, which is the
                            // interval the flight recorder surfaces.
                            let _wait = obs::trace::Guard::new(
                                "pool.reorder_wait",
                                Some(("shard", want as u64)),
                            );
                            loop {
                                if worker_died.load(Ordering::Acquire) {
                                    break 'drain;
                                }
                                buf = done
                                    .wait_timeout(buf, std::time::Duration::from_millis(20))
                                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                                    .0;
                                if let Some(r) = buf.remove(&want) {
                                    break r;
                                }
                            }
                        }
                    }
                };
                fold(&mut acc, want, unwrap_shard(want, r));
            }
        });
        if obs::enabled() {
            let busy_ns: Vec<u64> = busy.iter().map(|b| b.load(Ordering::Relaxed) as u64).collect();
            let max = busy_ns.iter().copied().max().unwrap_or(0);
            let mean = busy_ns.iter().sum::<u64>() as f64 / busy_ns.len().max(1) as f64;
            for ns in busy_ns {
                metrics.busy_ns.record(ns);
            }
            if mean > 0.0 {
                metrics.imbalance.set(max as f64 / mean);
            }
        }
        acc
    }

    /// Run one shard, applying the chaos schedule and bounded retry when
    /// one is attached. Without chaos this is a direct call: organic
    /// panics propagate exactly as before, and no unwind-capture frame
    /// is ever entered.
    fn call_shard<T, R, F>(&self, idx: usize, chunk: &[T], f: &F) -> Result<R, CaughtPanic>
    where
        F: Fn(usize, &[T]) -> R,
    {
        match self.chaos {
            None => Ok(f(idx, chunk)),
            Some(cs) => recover::try_with_retry(chaos::sites::POOL_SHARD, |attempt| {
                cs.maybe_fail(chaos::sites::POOL_SHARD, idx as u64, attempt);
                f(idx, chunk)
            }),
        }
    }

    /// Filter-map over `items` in parallel, preserving input order.
    /// `chunk_size` is derived so each worker gets a handful of shards
    /// (dynamic claiming smooths uneven per-item cost).
    pub fn par_filter_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> Option<R> + Sync,
    {
        let chunk = shard_size(items.len(), self.workers);
        let shards = self.par_chunks_indexed(items, chunk, |_, shard| {
            shard.iter().filter_map(&f).collect::<Vec<R>>()
        });
        shards.into_iter().flatten().collect()
    }

    /// Run `f(0..n)` across workers, returning results in index order.
    pub fn run_indexed<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let indices: Vec<usize> = (0..n).collect();
        let out = self.par_chunks_indexed(&indices, 1, |_, shard| f(shard[0]));
        out
    }
}

impl Default for ExecPool {
    fn default() -> Self {
        ExecPool::global()
    }
}

/// Worker-side guard for [`ExecPool::par_chunks_fold`]: raises the
/// "worker died" flag when dropped during a panic unwind; a normal
/// drop is a no-op.
struct SignalOnPanic<'a>(&'a std::sync::atomic::AtomicBool);

impl Drop for SignalOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.store(true, Ordering::Release);
        }
    }
}

/// Unwrap a shard result, surfacing an exhausted retry as a panic tagged
/// with the shard index. Both the serial path (which visits shards in
/// order and short-circuits) and the parallel path (which panics on the
/// lowest index after the sorted merge) produce this message for the
/// same shard, keeping the failure deterministic across worker counts.
fn unwrap_shard<R>(idx: usize, r: Result<R, CaughtPanic>) -> R {
    match r {
        Ok(v) => v,
        Err(e) => panic!(
            "pool.shard[{idx}] failed after {} attempts: {}",
            recover::MAX_ATTEMPTS,
            e.message
        ),
    }
}

/// A shard size that gives each worker ~4 shards to claim, bounded so
/// tiny inputs still produce at least one shard.
pub fn shard_size(len: usize, workers: usize) -> usize {
    (len / (workers.max(1) * 4)).max(1)
}

fn default_workers() -> usize {
    if let Ok(v) = std::env::var(WORKERS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_results_in_shard_order() {
        let items: Vec<u64> = (0..1000).collect();
        let serial = ExecPool::serial().par_chunks_indexed(&items, 7, |i, c| (i, c.to_vec()));
        for workers in [2, 3, 8] {
            let par = ExecPool::new(workers).par_chunks_indexed(&items, 7, |i, c| (i, c.to_vec()));
            assert_eq!(serial, par, "workers={workers}");
        }
    }

    #[test]
    fn filter_map_preserves_order() {
        let items: Vec<u32> = (0..5000).collect();
        let keep_odd = |x: &u32| (x % 2 == 1).then_some(*x * 10);
        let serial = ExecPool::serial().par_filter_map(&items, keep_odd);
        let par = ExecPool::new(4).par_filter_map(&items, keep_odd);
        assert_eq!(serial, par);
        assert_eq!(serial.len(), 2500);
        assert!(serial.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn run_indexed_in_order() {
        let serial = ExecPool::serial().run_indexed(64, |i| i * i);
        let par = ExecPool::new(5).run_indexed(64, |i| i * i);
        assert_eq!(serial, par);
        assert_eq!(par[10], 100);
    }

    #[test]
    fn empty_input_is_fine() {
        let empty: Vec<u8> = Vec::new();
        let out = ExecPool::new(4).par_chunks_indexed(&empty, 8, |_, c| c.len());
        assert!(out.is_empty());
        let out = ExecPool::new(4).par_filter_map(&empty, |x: &u8| Some(*x));
        assert!(out.is_empty());
    }

    #[test]
    fn transient_chaos_is_bitwise_invisible() {
        let items: Vec<u64> = (0..512).collect();
        let sum = |i: usize, c: &[u64]| (i as u64, c.iter().sum::<u64>());
        let base = ExecPool::new(4).par_chunks_indexed(&items, 8, sum);
        let cs = ChaosSchedule { seed: 5, probability: 0.4, failures_per_site: 2 };
        for workers in [1, 3, 8] {
            let out = ExecPool::new(workers).with_chaos(cs).par_chunks_indexed(&items, 8, sum);
            assert_eq!(base, out, "workers={workers}");
        }
    }

    #[test]
    fn permanent_chaos_panics_on_lowest_failing_shard() {
        let items: Vec<u64> = (0..256).collect();
        let cs = ChaosSchedule {
            seed: 5,
            probability: 0.3,
            failures_per_site: recover::MAX_ATTEMPTS,
        };
        let expected = (0..64u64)
            .find(|&i| cs.failures_at("pool.shard", i) > 0)
            .expect("p=0.3 over 64 shards must schedule a failure");
        for workers in [1, 4] {
            let err = recover::capture("test", || {
                ExecPool::new(workers)
                    .with_chaos(cs)
                    .par_chunks_indexed(&items, 4, |_, c| c.len())
            })
            .expect_err("permanent chaos must fail the fan-out");
            assert!(
                err.message.contains(&format!("pool.shard[{expected}]")),
                "workers={workers}: {}",
                err.message
            );
        }
    }

    #[test]
    fn fold_consumes_in_shard_order() {
        let items: Vec<u64> = (0..1000).collect();
        let run = |workers: usize| {
            ExecPool::new(workers).par_chunks_fold(
                &items,
                7,
                |i, c| (i, c.iter().sum::<u64>()),
                Vec::new(),
                |acc: &mut Vec<(usize, u64)>, idx, r| {
                    assert_eq!(idx, r.0);
                    assert_eq!(acc.len(), idx, "fold saw shard {idx} out of order");
                    acc.push(r);
                },
            )
        };
        let serial = run(1);
        for workers in [2, 3, 8] {
            assert_eq!(serial, run(workers), "workers={workers}");
        }
    }

    #[test]
    fn fold_with_transient_chaos_is_invisible() {
        let items: Vec<u64> = (0..512).collect();
        let cs = ChaosSchedule { seed: 5, probability: 0.4, failures_per_site: 2 };
        let run = |pool: ExecPool| {
            pool.par_chunks_fold(
                &items,
                8,
                |_, c| c.iter().sum::<u64>(),
                0u64,
                |acc, _, r| *acc += r,
            )
        };
        let base = run(ExecPool::new(4));
        assert_eq!(base, items.iter().sum::<u64>());
        for workers in [1, 3, 8] {
            assert_eq!(base, run(ExecPool::new(workers).with_chaos(cs)), "workers={workers}");
        }
    }

    #[test]
    fn fold_panics_on_lowest_failing_shard() {
        let items: Vec<u64> = (0..256).collect();
        let cs = ChaosSchedule {
            seed: 5,
            probability: 0.3,
            failures_per_site: recover::MAX_ATTEMPTS,
        };
        let expected = (0..64u64)
            .find(|&i| cs.failures_at("pool.shard", i) > 0)
            .expect("p=0.3 over 64 shards must schedule a failure");
        for workers in [1, 4] {
            let err = recover::capture("test", || {
                ExecPool::new(workers).with_chaos(cs).par_chunks_fold(
                    &items,
                    4,
                    |_, c| c.len(),
                    0usize,
                    |acc, _, r| *acc += r,
                )
            })
            .expect_err("permanent chaos must fail the fold");
            assert!(
                err.message.contains(&format!("pool.shard[{expected}]")),
                "workers={workers}: {}",
                err.message
            );
        }
    }

    #[test]
    fn fold_survives_organic_worker_panic() {
        // An uncaught panic inside the shard closure must not deadlock
        // the ordered drain; it surfaces as a panic from the fold call.
        let items: Vec<u64> = (0..64).collect();
        for workers in [1, 4] {
            let err = recover::capture("test", || {
                ExecPool::new(workers).par_chunks_fold(
                    &items,
                    4,
                    |i, c| {
                        assert!(i != 9, "shard nine always dies");
                        c.len()
                    },
                    0usize,
                    |acc, _, r| *acc += r,
                )
            })
            .expect_err("the organic panic must propagate");
            // Serial folds re-raise the original payload; parallel ones
            // surface it through the scope join. Either way the call
            // returns (the deadlock this test guards against would hang
            // here forever).
            assert!(
                err.message.contains("shard nine") || err.message.contains("scoped thread"),
                "workers={workers}: {}",
                err.message
            );
        }
    }

    #[test]
    fn reentrant_nested_use_does_not_deadlock() {
        let pool = ExecPool::new(2);
        let outer = pool.run_indexed(4, |i| {
            let inner = pool.run_indexed(8, |j| i * 100 + j);
            inner.iter().sum::<usize>()
        });
        assert_eq!(outer.len(), 4);
        assert_eq!(outer[0], (0..8).sum::<usize>());
    }
}
