//! Property-based tests for the RNG and distributions.

use proptest::prelude::*;
use simcore::dist::{binomial, exponential, log_normal, pareto, poisson, smoothstep, Zipf};
use simcore::time::{Date, SimTime, SECS_PER_DAY};
use simcore::SimRng;

proptest! {
    /// Determinism: the same seed always yields the same stream.
    #[test]
    fn rng_deterministic(seed in any::<u64>()) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..32 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// Fork independence: forking never advances the parent, and
    /// differently-tagged children disagree.
    #[test]
    fn rng_fork_isolated(seed in any::<u64>(), t1 in any::<u64>(), t2 in any::<u64>()) {
        prop_assume!(t1 != t2);
        let parent = SimRng::new(seed);
        let before = parent.clone();
        let mut c1 = parent.fork(t1);
        let mut c2 = parent.fork(t2);
        prop_assert_eq!(parent, before);
        let same = (0..16).filter(|_| c1.next_u64() == c2.next_u64()).count();
        prop_assert!(same < 2);
    }

    /// Bounded draws stay in bounds.
    #[test]
    fn rng_bounds(seed in any::<u64>(), n in 1u64..1_000_000) {
        let mut r = SimRng::new(seed);
        for _ in 0..64 {
            prop_assert!(r.u64_below(n) < n);
            let f = r.f64();
            prop_assert!((0.0..1.0).contains(&f));
        }
    }

    /// sample_indices yields k distinct in-range indices for any valid
    /// (n, k).
    #[test]
    fn sample_indices_valid(seed in any::<u64>(), n in 1usize..200, frac in 0.0f64..=1.0) {
        let k = ((n as f64) * frac) as usize;
        let mut r = SimRng::new(seed);
        let s = r.sample_indices(n, k);
        prop_assert_eq!(s.len(), k);
        let set: std::collections::HashSet<_> = s.iter().collect();
        prop_assert_eq!(set.len(), k);
        prop_assert!(s.iter().all(|&i| i < n));
    }

    /// Distribution supports: every sampler respects its support.
    #[test]
    fn distribution_supports(seed in any::<u64>()) {
        let mut r = SimRng::new(seed);
        for _ in 0..64 {
            prop_assert!(exponential(&mut r, 2.0) >= 0.0);
            prop_assert!(pareto(&mut r, 3.0, 1.5) >= 3.0);
            prop_assert!(log_normal(&mut r, 0.0, 1.0) > 0.0);
        }
    }

    /// Binomial never exceeds n; Poisson(0) is 0.
    #[test]
    fn counting_distributions(seed in any::<u64>(), n in 0u64..10_000, p in 0.0f64..=1.0) {
        let mut r = SimRng::new(seed);
        for _ in 0..32 {
            prop_assert!(binomial(&mut r, n, p) <= n);
        }
        prop_assert_eq!(poisson(&mut r, 0.0), 0);
    }

    /// Zipf samples stay in range and the PMF is a valid distribution.
    #[test]
    fn zipf_valid(seed in any::<u64>(), n in 1usize..500, s in 0.2f64..3.0) {
        let z = Zipf::new(n, s);
        let mut r = SimRng::new(seed);
        for _ in 0..32 {
            prop_assert!(z.sample(&mut r) < n);
        }
        let total: f64 = (0..n).map(|k| z.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        // Monotone decreasing mass.
        for k in 1..n {
            prop_assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-12);
        }
    }

    /// Smoothstep is monotone and clamped.
    #[test]
    fn smoothstep_monotone(a in -2.0f64..2.0, b in -2.0f64..2.0) {
        prop_assume!(a <= b);
        prop_assert!(smoothstep(a) <= smoothstep(b) + 1e-12);
        prop_assert!((0.0..=1.0).contains(&smoothstep(a)));
    }

    /// Calendar round-trips for any day in a broad range.
    #[test]
    fn date_roundtrip(days in -100_000i64..100_000) {
        let d = Date::from_unix_days(days);
        prop_assert_eq!(d.to_unix_days(), days);
        prop_assert!((1..=12).contains(&d.month));
        prop_assert!((1..=31).contains(&d.day));
    }

    /// Day and week indexing are consistent under second offsets.
    #[test]
    fn time_indexing_consistent(day in 0i64..1642, sec in 0i64..86_400) {
        let t = SimTime(day * SECS_PER_DAY + sec);
        prop_assert_eq!(t.day_index(), day);
        prop_assert_eq!(t.week_index(), day.div_euclid(7));
        prop_assert_eq!(t.second_of_day(), sec);
        prop_assert!(t.in_study());
    }
}
