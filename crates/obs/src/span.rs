//! Guard-style wall-clock spans.
//!
//! `let _g = obs::span!("generate");` times the enclosing scope and
//! records the elapsed nanoseconds into the global latency histogram
//! `span.<path>`, where `<path>` is the dot-joined stack of spans open
//! on the current thread — so a span entered inside another reports as
//! `run.generate`, nesting generate → observe → project → analyze under
//! one run. Pool worker threads start fresh stacks; their per-shard
//! timings are recorded by the pool itself, not by spans.
//!
//! The hot path is allocation-free after first use: each thread keeps
//! one growable dotted-path buffer (extended/truncated in place as
//! spans open and close, never re-joined) and a map from dotted path to
//! its resolved histogram handle, so re-entering a known span touches
//! no allocator and takes no registry lock. When the flight recorder is
//! armed ([`crate::trace`]), every span additionally emits a
//! begin/end interval on the thread's trace lane, with a snapshot of
//! all registry counters attached to the end event.
//!
//! Spans are wall-clock (`Instant`) by design and therefore *never*
//! influence simulation state; `crates/obs` is the repo lint's sole
//! allowlisted home for wall-clock primitives in library code.

use crate::metrics;
use crate::trace;
use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Per-thread span state: the incremental dotted path of open spans,
/// the byte offsets to rewind to on each close, and the interned
/// path → histogram handles.
#[derive(Default)]
struct ThreadSpans {
    path: String,
    rewinds: Vec<usize>,
    histograms: HashMap<String, Arc<metrics::Histogram>>,
}

thread_local! {
    static SPANS: RefCell<ThreadSpans> = RefCell::new(ThreadSpans::default());
}

/// An open span; records its latency histogram on drop.
#[derive(Debug)]
pub struct Span {
    /// `None` when telemetry was disabled at entry — a pure no-op.
    armed: Option<Instant>,
}

/// Enter a span named `name`. Prefer the [`crate::span!`] macro.
pub fn enter(name: &'static str) -> Span {
    if !crate::enabled() {
        return Span { armed: None };
    }
    SPANS.with(|s| {
        let mut s = s.borrow_mut();
        let rewind = s.path.len();
        s.rewinds.push(rewind);
        if !s.path.is_empty() {
            s.path.push('.');
        }
        s.path.push_str(name);
        if trace::enabled() {
            trace::begin(Cow::Owned(s.path.clone()));
        }
    });
    Span {
        armed: Some(Instant::now()),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.armed.take() else {
            return;
        };
        let ns = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        SPANS.with(|s| {
            let mut s = s.borrow_mut();
            let ThreadSpans {
                path,
                rewinds,
                histograms,
            } = &mut *s;
            if !histograms.contains_key(path.as_str()) {
                let handle =
                    metrics::histogram(&format!("span.{path}"), &metrics::LATENCY_NS);
                histograms.insert(path.clone(), handle);
            }
            histograms[path.as_str()].record(ns);
            if trace::enabled() {
                let args = metrics::global()
                    .counter_values()
                    .into_iter()
                    .map(|(k, v)| (Cow::Owned(k), v))
                    .collect();
                trace::end_with_args(Cow::Owned(path.clone()), args);
            }
            let rewind = rewinds.pop().unwrap_or(0);
            path.truncate(rewind);
        });
    }
}

/// Time the enclosing scope: `let _g = obs::span!("stage");`
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::enter($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that poke the process-wide enabled switch.
    fn switch_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap()
    }

    #[test]
    fn spans_nest_into_dotted_paths() {
        let _lock = switch_lock();
        crate::set_enabled(true);
        {
            let _outer = enter("outer_span_test");
            let _inner = enter("inner");
        }
        let snap = metrics::global().snapshot();
        let h = &snap.histograms["span.outer_span_test.inner"];
        assert!(h.count >= 1);
        assert!(snap.histograms.contains_key("span.outer_span_test"));
    }

    #[test]
    fn reentered_spans_reuse_interned_histogram_handles() {
        let _lock = switch_lock();
        crate::set_enabled(true);
        for _ in 0..3 {
            let _g = enter("interned_span_test");
        }
        let before = metrics::global().snapshot().histograms["span.interned_span_test"].count;
        {
            let _g = enter("interned_span_test");
        }
        let after = metrics::global().snapshot().histograms["span.interned_span_test"].count;
        assert_eq!(after, before + 1);
        // The thread-local cache interned the path.
        let cached = SPANS.with(|s| {
            s.borrow()
                .histograms
                .contains_key("interned_span_test")
        });
        assert!(cached, "dotted path must be interned after first use");
    }

    #[test]
    fn disabled_spans_record_nothing_and_keep_stack_clean() {
        let _lock = switch_lock();
        crate::set_enabled(false);
        {
            let _g = enter("disabled_span_test");
        }
        crate::set_enabled(true);
        let snap = metrics::global().snapshot();
        assert!(!snap.histograms.contains_key("span.disabled_span_test"));
        // Stack must be balanced: a new span is top-level again.
        {
            let _g = enter("balanced_span_test");
        }
        let snap = metrics::global().snapshot();
        assert!(snap.histograms.contains_key("span.balanced_span_test"));
    }

    #[test]
    fn armed_tracing_brackets_spans_with_counter_snapshots() {
        let _lock = switch_lock();
        crate::set_enabled(true);
        trace::clear();
        trace::enable(1024);
        {
            let _g = enter("traced_span_test");
        }
        trace::disable();
        let lane = trace::current_lane().expect("span recorded on this lane");
        let events: Vec<trace::Event> = trace::snapshot()
            .into_iter()
            .find(|(id, _)| *id == lane)
            .map(|(_, events)| events)
            .unwrap_or_default()
            .into_iter()
            .filter(|e| e.name.ends_with("traced_span_test"))
            .collect();
        let begins = events
            .iter()
            .filter(|e| e.phase == trace::Phase::Begin)
            .count();
        let ends: Vec<&trace::Event> = events
            .iter()
            .filter(|e| e.phase == trace::Phase::End)
            .collect();
        assert!(begins >= 1, "span begin must reach the trace lane");
        assert!(!ends.is_empty(), "span end must reach the trace lane");
        assert!(
            !ends[0].args.is_empty(),
            "span end must carry a counter snapshot"
        );
        trace::clear();
    }
}
