//! Guard-style wall-clock spans.
//!
//! `let _g = obs::span!("generate");` times the enclosing scope and
//! records the elapsed nanoseconds into the global latency histogram
//! `span.<path>`, where `<path>` is the dot-joined stack of spans open
//! on the current thread — so a span entered inside another reports as
//! `run.generate`, nesting generate → observe → project → analyze under
//! one run. Pool worker threads start fresh stacks; their per-shard
//! timings are recorded by the pool itself, not by spans.
//!
//! Spans are wall-clock (`Instant`) by design and therefore *never*
//! influence simulation state; `crates/obs` is the repo lint's sole
//! allowlisted home for wall-clock primitives in library code.

use crate::metrics;
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// An open span; records its latency histogram on drop.
#[derive(Debug)]
pub struct Span {
    /// `None` when telemetry was disabled at entry — a pure no-op.
    armed: Option<(String, Instant)>,
}

/// Enter a span named `name`. Prefer the [`crate::span!`] macro.
pub fn enter(name: &'static str) -> Span {
    if !crate::enabled() {
        return Span { armed: None };
    }
    let path = STACK.with(|s| {
        let mut s = s.borrow_mut();
        s.push(name);
        s.join(".")
    });
    Span {
        armed: Some((path, Instant::now())),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some((path, start)) = self.armed.take() else {
            return;
        };
        STACK.with(|s| {
            s.borrow_mut().pop();
        });
        let ns = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        metrics::histogram(&format!("span.{path}"), &metrics::LATENCY_NS).record(ns);
    }
}

/// Time the enclosing scope: `let _g = obs::span!("stage");`
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::enter($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that poke the process-wide enabled switch.
    fn switch_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap()
    }

    #[test]
    fn spans_nest_into_dotted_paths() {
        let _lock = switch_lock();
        crate::set_enabled(true);
        {
            let _outer = enter("outer_span_test");
            let _inner = enter("inner");
        }
        let snap = metrics::global().snapshot();
        let h = &snap.histograms["span.outer_span_test.inner"];
        assert!(h.count >= 1);
        assert!(snap.histograms.contains_key("span.outer_span_test"));
    }

    #[test]
    fn disabled_spans_record_nothing_and_keep_stack_clean() {
        let _lock = switch_lock();
        crate::set_enabled(false);
        {
            let _g = enter("disabled_span_test");
        }
        crate::set_enabled(true);
        let snap = metrics::global().snapshot();
        assert!(!snap.histograms.contains_key("span.disabled_span_test"));
        // Stack must be balanced: a new span is top-level again.
        {
            let _g = enter("balanced_span_test");
        }
        let snap = metrics::global().snapshot();
        assert!(snap.histograms.contains_key("span.balanced_span_test"));
    }
}
