//! Leveled stderr logging.
//!
//! The repo convention (enforced by `tools/lint.sh` and
//! `tests/repo_lint.rs`) is that library crates never call `println!`
//! or `eprintln!` directly: stdout is reserved for machine-readable
//! experiment output, and stderr diagnostics go through this module so
//! `DDOSCOVERY_LOG=error|warn|info|debug` controls verbosity uniformly.
//! This file is the one allowlisted `eprintln!` site in library code.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};

/// Environment variable selecting the maximum emitted level.
pub const LOG_ENV: &str = "DDOSCOVERY_LOG";

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
}

impl Level {
    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            _ => Level::Debug,
        }
    }

    /// Parse a `DDOSCOVERY_LOG` value; `None` for unrecognized input.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" | "trace" => Some(Level::Debug),
            _ => None,
        }
    }

    fn tag(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// 255 = not yet initialized from the environment.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(255);

/// The maximum level currently emitted (default: `info`).
pub fn max_level() -> Level {
    let raw = MAX_LEVEL.load(Ordering::Relaxed);
    if raw != 255 {
        return Level::from_u8(raw);
    }
    let level = std::env::var(LOG_ENV)
        .ok()
        .and_then(|v| Level::parse(&v))
        .unwrap_or(Level::Info);
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
    level
}

/// Override the emitted level (wins over the environment).
pub fn set_max_level(level: Level) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Emit one record to stderr if `level` is within the configured
/// maximum. Prefer the [`crate::error!`] … [`crate::debug!`] macros.
pub fn log(level: Level, args: fmt::Arguments<'_>) {
    if level <= max_level() {
        eprintln!("[{level:5}] {args}");
    }
}

/// Write preformatted text straight to stderr, bypassing levels — for
/// deliberate human-readable artifacts like the telemetry summary
/// table, which must appear even under `DDOSCOVERY_LOG=error`.
pub fn raw_stderr(text: &str) {
    eprintln!("{text}");
}

#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => { $crate::log::log($crate::log::Level::Error, format_args!($($arg)*)) };
}

#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => { $crate::log::log($crate::log::Level::Warn, format_args!($($arg)*)) };
}

#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => { $crate::log::log($crate::log::Level::Info, format_args!($($arg)*)) };
}

#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => { $crate::log::log($crate::log::Level::Debug, format_args!($($arg)*)) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_levels() {
        assert_eq!(Level::parse("warn"), Some(Level::Warn));
        assert_eq!(Level::parse(" DEBUG "), Some(Level::Debug));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("nope"), None);
    }

    #[test]
    fn ordering_matches_severity() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Info < Level::Debug);
    }

    #[test]
    fn set_max_level_wins() {
        set_max_level(Level::Error);
        assert_eq!(max_level(), Level::Error);
        set_max_level(Level::Info);
        assert_eq!(max_level(), Level::Info);
    }
}
