//! Bounded retry with backoff for transient IO.
//!
//! Filesystem and socket syscalls fail transiently in well-understood
//! ways — `EINTR` under signal delivery, `AlreadyExists` when racing a
//! sibling process for a claim-by-`create_new` name, `WouldBlock` on a
//! briefly saturated descriptor. Scattering ad-hoc loops around each
//! call site invites two bugs this module exists to prevent: unbounded
//! spinning (the old run-store claim loop) and silently swallowing a
//! *non*-transient error. [`with_backoff`] makes the attempt budget and
//! the retryable-error predicate explicit at every call site.
//!
//! This is **IO-boundary** machinery only: nothing in the simulation
//! pipeline may branch on it (retry here is invisible to study output,
//! like the rest of this crate). Panic recovery is a different concern
//! with a different budget — that stays in `simcore::recover`.

use std::io;
use std::thread;
use std::time::Duration;

/// True for the error kinds that signal "try the same operation again":
/// interrupted syscalls and expired/not-ready descriptors. Claim-loop
/// races (`AlreadyExists`) are *not* included — they are only
/// retryable when the caller varies the name per attempt, so such call
/// sites pass their own predicate.
pub fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Milliseconds slept before retry `attempt` (the first retry is
/// immediate; later ones back off geometrically, capped at 4 ms —
/// these are local-filesystem races, not remote calls).
fn backoff_ms(attempt: u32) -> u64 {
    match attempt {
        0 | 1 => 0,
        2 => 1,
        3 => 2,
        _ => 4,
    }
}

/// Run `op(attempt)` up to `attempts` times, sleeping [`backoff_ms`]
/// between tries, retrying only while `retryable` accepts the error.
/// The final error (or the first non-retryable one) is returned as-is.
/// Each retry is logged at debug level and counted in `io.retries`.
pub fn with_backoff<T>(
    label: &str,
    attempts: u32,
    retryable: impl Fn(&io::Error) -> bool,
    mut op: impl FnMut(u32) -> io::Result<T>,
) -> io::Result<T> {
    let budget = attempts.max(1);
    let mut attempt = 0;
    loop {
        match op(attempt) {
            Ok(v) => return Ok(v),
            Err(e) if attempt + 1 < budget && retryable(&e) => {
                crate::metrics::counter("io.retries").inc();
                crate::debug!("retry: {label}: attempt {attempt} failed ({e}); retrying");
                attempt += 1;
                let pause = backoff_ms(attempt);
                if pause > 0 {
                    thread::sleep(Duration::from_millis(pause));
                }
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Error, ErrorKind};

    #[test]
    fn first_success_returns_immediately() {
        let mut calls = 0;
        let v = with_backoff("t", 5, is_transient, |_| {
            calls += 1;
            Ok::<_, Error>(42)
        });
        assert_eq!(v.expect("ok"), 42);
        assert_eq!(calls, 1);
    }

    #[test]
    fn transient_errors_retry_up_to_budget() {
        let mut calls = 0;
        let v = with_backoff("t", 4, is_transient, |attempt| {
            calls += 1;
            if attempt < 3 {
                Err(Error::new(ErrorKind::Interrupted, "eintr"))
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(v.expect("recovers"), 3);
        assert_eq!(calls, 4);
    }

    #[test]
    fn budget_exhaustion_surfaces_the_last_error() {
        let err = with_backoff("t", 3, is_transient, |_| {
            Err::<(), _>(Error::new(ErrorKind::WouldBlock, "busy"))
        })
        .expect_err("exhausts");
        assert_eq!(err.kind(), ErrorKind::WouldBlock);
    }

    #[test]
    fn non_retryable_errors_fail_fast() {
        let mut calls = 0;
        let err = with_backoff("t", 10, is_transient, |_| {
            calls += 1;
            Err::<(), _>(Error::new(ErrorKind::PermissionDenied, "denied"))
        })
        .expect_err("fails fast");
        assert_eq!(err.kind(), ErrorKind::PermissionDenied);
        assert_eq!(calls, 1);
    }

    #[test]
    fn custom_predicate_handles_claim_races() {
        let mut calls = 0;
        let v = with_backoff(
            "claim",
            8,
            |e| e.kind() == ErrorKind::AlreadyExists,
            |attempt| {
                calls += 1;
                if attempt < 2 {
                    Err(Error::new(ErrorKind::AlreadyExists, "taken"))
                } else {
                    Ok(attempt)
                }
            },
        );
        assert_eq!(v.expect("claims a free slot"), 2);
        assert_eq!(calls, 3);
    }

    #[test]
    fn zero_attempt_budget_still_runs_once() {
        let v = with_backoff("t", 0, is_transient, |_| Ok::<_, Error>(1));
        assert_eq!(v.expect("ok"), 1);
    }
}
