//! Run manifests: one JSON document that says what a pipeline run
//! actually did — every counter, gauge, and latency histogram in the
//! registry, plus a fingerprint of the configuration that produced it.
//!
//! Counters and gauges derived from simulation state (observation
//! counts, cache hits, tasks dispatched) are deterministic in the
//! study seed; span and busy-time histograms are wall-clock and vary
//! run to run. Consumers that diff manifests should compare the former
//! exactly and the latter only as magnitudes.

use crate::metrics::{self, HistogramSnapshot, MetricsSnapshot};
use serde::{Serialize, Value};

/// Environment variable naming a manifest output path (the CLI's
/// `--telemetry` flag wins over it).
pub const TELEMETRY_ENV: &str = "DDOSCOVERY_TELEMETRY";

/// Schema version of the manifest JSON document.
pub const SCHEMA: u64 = 1;

/// Identity of the run: everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct RunInfo {
    /// Scenario label (`quick`, `paper`, `custom`, …).
    pub scenario: String,
    /// Master seed of the study.
    pub seed: u64,
    /// Explicit worker count, if one was pinned (flag or config).
    pub workers: Option<usize>,
    /// FNV-1a hash of the full serialized `StudyConfig` — a cheap
    /// git-describe-style fingerprint that changes whenever any knob
    /// does.
    pub config_hash: u64,
    /// Per-stage scenario fingerprints (`plan`, `attacks`,
    /// `observations`): the content-addressed keys the stage cache
    /// executes under (DESIGN.md §7). Empty when the producer predates
    /// the stage graph or chose not to record them.
    pub stages: Vec<(String, u64)>,
    /// Weeks blacked out per fault source by the run's fault plan
    /// (`(source, sorted week indices)`). Empty for a fault-free run;
    /// lets a manifest reader see *which* weeks of which observatory
    /// were degraded without replaying the plan.
    pub degraded_weeks: Vec<(String, Vec<u64>)>,
}

/// A complete run manifest.
#[derive(Debug, Clone)]
pub struct RunManifest {
    pub schema: u64,
    /// Package version plus a describe-style build string.
    pub version: String,
    pub describe: String,
    pub run: RunInfo,
    pub metrics: MetricsSnapshot,
}

/// Streaming FNV-1a hasher: the one fingerprint primitive of the
/// workspace. Config fingerprints ([`fnv1a`]) and the per-stage
/// scenario fingerprints behind the cross-run stage cache (DESIGN.md
/// §7) all fold through this, so a fingerprint is reproducible from
/// any crate that can name the same byte stream.
#[derive(Debug, Clone)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Fnv::new()
    }
}

impl Fnv {
    pub fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    /// Fold `bytes` into the running hash.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Fnv {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
        self
    }

    /// Fold a `u64` (little-endian) into the running hash — used to
    /// chain one stage fingerprint into the next.
    pub fn write_u64(&mut self, v: u64) -> &mut Fnv {
        self.write(&v.to_le_bytes())
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// FNV-1a over arbitrary bytes; used for config fingerprints.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.write(bytes);
    h.finish()
}

impl RunManifest {
    /// Snapshot the global registry under the given run identity.
    pub fn capture(run: RunInfo) -> RunManifest {
        let version = env!("CARGO_PKG_VERSION").to_string();
        let describe = option_env!("DDOSCOVERY_BUILD_DESCRIBE")
            .map(str::to_string)
            .unwrap_or_else(|| format!("v{}-offline-{:08x}", version, run.config_hash as u32));
        RunManifest {
            schema: SCHEMA,
            version,
            describe,
            run,
            metrics: metrics::global().snapshot(),
        }
    }

    /// The manifest as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("manifest serialization is infallible")
    }

    /// A human-readable summary table (for stderr): top-level stage
    /// latencies, per-observatory counts, pool utilization, and cache
    /// behaviour.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "== telemetry: {} run, seed {:#x}, workers {}, config {:016x} ==\n",
            self.run.scenario,
            self.run.seed,
            self.run
                .workers
                .map(|w| w.to_string())
                .unwrap_or_else(|| "default".into()),
            self.run.config_hash,
        ));
        if !self.metrics.histograms.is_empty() {
            out.push_str(&format!(
                "{:<34} {:>8} {:>10} {:>10} {:>10}\n",
                "stage / histogram", "samples", "~p50", "~p95", "mean"
            ));
            for (name, h) in &self.metrics.histograms {
                let mean = if h.count > 0 { h.sum / h.count } else { 0 };
                out.push_str(&format!(
                    "{:<34} {:>8} {:>10} {:>10} {:>10}\n",
                    name,
                    h.count,
                    fmt_mag(name, quantile(h, 0.50)),
                    fmt_mag(name, quantile(h, 0.95)),
                    fmt_mag(name, Some(mean)),
                ));
            }
        }
        if !self.metrics.counters.is_empty() {
            out.push_str(&format!("{:<34} {:>12}\n", "counter", "value"));
            for (name, v) in &self.metrics.counters {
                out.push_str(&format!("{name:<34} {v:>12}\n"));
            }
        }
        for (name, v) in &self.metrics.gauges {
            out.push_str(&format!("{name:<34} {v:>12.3}\n"));
        }
        if !self.run.degraded_weeks.is_empty() {
            out.push_str(&format!("{:<34} {:>12}\n", "degraded source", "weeks lost"));
            for (source, weeks) in &self.run.degraded_weeks {
                out.push_str(&format!("{:<34} {:>12}\n", source, weeks.len()));
            }
        }
        out
    }
}

/// Coarse quantile over a snapshot (mirrors `Histogram::approx_quantile`).
/// Public because the run store diffs stored histograms at p50/p99.
pub fn quantile(h: &HistogramSnapshot, q: f64) -> Option<u64> {
    if h.count == 0 {
        return None;
    }
    let target = (q * h.count as f64).ceil().max(1.0) as u64;
    let mut cum = 0;
    for (i, b) in h.buckets.iter().enumerate() {
        cum += b;
        if cum >= target {
            return Some(h.bounds.get(i).copied().unwrap_or(u64::MAX));
        }
    }
    Some(u64::MAX)
}

// ---------------------------------------------------------------------
// Deserialization (run store)
// ---------------------------------------------------------------------
//
// The persistent run store reads manifests back from disk; the vendored
// serde has no derive, so the reader is hand-rolled over `Value` and
// returns `Err` (never panics) on any structural mismatch — a corrupt
// or truncated stored manifest must degrade to a skipped entry.

fn field<'a>(v: &'a Value, key: &str, ctx: &str) -> Result<&'a Value, String> {
    v.get(key)
        .ok_or_else(|| format!("{ctx}: missing field `{key}`"))
}

fn as_u64(v: &Value, ctx: &str) -> Result<u64, String> {
    match v {
        Value::UInt(u) => Ok(*u),
        Value::Int(i) if *i >= 0 => Ok(*i as u64),
        other => Err(format!("{ctx}: expected unsigned integer, got {other:?}")),
    }
}

fn as_f64(v: &Value, ctx: &str) -> Result<f64, String> {
    match v {
        Value::Float(f) => Ok(*f),
        Value::UInt(u) => Ok(*u as f64),
        Value::Int(i) => Ok(*i as f64),
        // The writer maps non-finite gauges to null.
        Value::Null => Ok(f64::NAN),
        other => Err(format!("{ctx}: expected number, got {other:?}")),
    }
}

fn as_str(v: &Value, ctx: &str) -> Result<String, String> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        other => Err(format!("{ctx}: expected string, got {other:?}")),
    }
}

fn as_entries<'a>(v: &'a Value, ctx: &str) -> Result<&'a [(String, Value)], String> {
    match v {
        Value::Object(entries) => Ok(entries),
        other => Err(format!("{ctx}: expected object, got {other:?}")),
    }
}

fn as_u64_array(v: &Value, ctx: &str) -> Result<Vec<u64>, String> {
    match v {
        Value::Array(items) => items.iter().map(|item| as_u64(item, ctx)).collect(),
        other => Err(format!("{ctx}: expected array, got {other:?}")),
    }
}

fn histogram_from_value(v: &Value, ctx: &str) -> Result<HistogramSnapshot, String> {
    Ok(HistogramSnapshot {
        bounds: as_u64_array(field(v, "bounds", ctx)?, ctx)?,
        buckets: as_u64_array(field(v, "buckets", ctx)?, ctx)?,
        count: as_u64(field(v, "count", ctx)?, ctx)?,
        sum: as_u64(field(v, "sum", ctx)?, ctx)?,
    })
}

impl RunManifest {
    /// Parse a manifest previously written by [`RunManifest::to_json`].
    /// Structural errors come back as `Err` with a field path — never a
    /// panic — so the run store can skip corrupt entries with a warning.
    pub fn from_json(text: &str) -> Result<RunManifest, String> {
        let v: Value =
            serde_json::from_str(text).map_err(|e| format!("manifest: invalid JSON: {e}"))?;
        let schema = as_u64(field(&v, "schema", "manifest")?, "manifest.schema")?;
        if schema > SCHEMA {
            return Err(format!(
                "manifest: schema {schema} is newer than supported {SCHEMA}"
            ));
        }
        let run_v = field(&v, "run", "manifest")?;
        let workers = match field(run_v, "workers", "manifest.run")? {
            Value::Null => None,
            other => Some(as_u64(other, "manifest.run.workers")? as usize),
        };
        let stages = as_entries(field(run_v, "stages", "manifest.run")?, "manifest.run.stages")?
            .iter()
            .map(|(name, fp)| Ok((name.clone(), as_u64(fp, "manifest.run.stages")?)))
            .collect::<Result<Vec<_>, String>>()?;
        let degraded_weeks = as_entries(
            field(run_v, "degraded_weeks", "manifest.run")?,
            "manifest.run.degraded_weeks",
        )?
        .iter()
        .map(|(source, weeks)| {
            Ok((
                source.clone(),
                as_u64_array(weeks, "manifest.run.degraded_weeks")?,
            ))
        })
        .collect::<Result<Vec<_>, String>>()?;
        let metrics_v = field(&v, "metrics", "manifest")?;
        let mut metrics = MetricsSnapshot::default();
        for (name, val) in as_entries(field(metrics_v, "counters", "manifest.metrics")?, "counters")?
        {
            metrics
                .counters
                .insert(name.clone(), as_u64(val, "manifest.metrics.counters")?);
        }
        for (name, val) in as_entries(field(metrics_v, "gauges", "manifest.metrics")?, "gauges")? {
            metrics
                .gauges
                .insert(name.clone(), as_f64(val, "manifest.metrics.gauges")?);
        }
        for (name, val) in as_entries(
            field(metrics_v, "histograms", "manifest.metrics")?,
            "histograms",
        )? {
            metrics.histograms.insert(
                name.clone(),
                histogram_from_value(val, "manifest.metrics.histograms")?,
            );
        }
        Ok(RunManifest {
            schema,
            version: as_str(field(&v, "version", "manifest")?, "manifest.version")?,
            describe: as_str(field(&v, "describe", "manifest")?, "manifest.describe")?,
            run: RunInfo {
                scenario: as_str(field(run_v, "scenario", "manifest.run")?, "scenario")?,
                seed: as_u64(field(run_v, "seed", "manifest.run")?, "manifest.run.seed")?,
                workers,
                config_hash: as_u64(
                    field(run_v, "config_hash", "manifest.run")?,
                    "manifest.run.config_hash",
                )?,
                stages,
                degraded_weeks,
            },
            metrics,
        })
    }
}

/// Render a magnitude: nanosecond histograms get time units, count
/// histograms plain numbers, overflow an `>top` marker.
fn fmt_mag(name: &str, v: Option<u64>) -> String {
    let Some(v) = v else { return "-".into() };
    if v == u64::MAX {
        return ">top".into();
    }
    if name.ends_with("_ns") || name.starts_with("span.") {
        if v >= 1_000_000_000 {
            format!("{:.2}s", v as f64 / 1e9)
        } else if v >= 1_000_000 {
            format!("{:.1}ms", v as f64 / 1e6)
        } else if v >= 1_000 {
            format!("{:.0}us", v as f64 / 1e3)
        } else {
            format!("{v}ns")
        }
    } else {
        v.to_string()
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

impl Serialize for HistogramSnapshot {
    fn to_value(&self) -> Value {
        obj(vec![
            ("bounds", self.bounds.to_value()),
            ("buckets", self.buckets.to_value()),
            ("count", Value::UInt(self.count)),
            ("sum", Value::UInt(self.sum)),
        ])
    }
}

impl Serialize for MetricsSnapshot {
    fn to_value(&self) -> Value {
        // Emit maps as JSON objects (names are strings); the vendored
        // serde's generic map impl would render [key, value] pairs.
        let counters = Value::Object(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), Value::UInt(*v)))
                .collect(),
        );
        let gauges = Value::Object(
            self.gauges
                .iter()
                .map(|(k, v)| (k.clone(), Value::Float(*v)))
                .collect(),
        );
        let histograms = Value::Object(
            self.histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        );
        obj(vec![
            ("counters", counters),
            ("gauges", gauges),
            ("histograms", histograms),
        ])
    }
}

impl Serialize for RunManifest {
    fn to_value(&self) -> Value {
        obj(vec![
            ("schema", Value::UInt(self.schema)),
            ("version", Value::Str(self.version.clone())),
            ("describe", Value::Str(self.describe.clone())),
            (
                "run",
                obj(vec![
                    ("scenario", Value::Str(self.run.scenario.clone())),
                    ("seed", Value::UInt(self.run.seed)),
                    (
                        "workers",
                        match self.run.workers {
                            Some(w) => Value::UInt(w as u64),
                            None => Value::Null,
                        },
                    ),
                    ("config_hash", Value::UInt(self.run.config_hash)),
                    (
                        "stages",
                        Value::Object(
                            self.run
                                .stages
                                .iter()
                                .map(|(name, fp)| (name.clone(), Value::UInt(*fp)))
                                .collect(),
                        ),
                    ),
                    (
                        "degraded_weeks",
                        Value::Object(
                            self.run
                                .degraded_weeks
                                .iter()
                                .map(|(source, weeks)| (source.clone(), weeks.to_value()))
                                .collect(),
                        ),
                    ),
                ]),
            ),
            ("metrics", self.metrics.to_value()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), fnv1a(b"a"));
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }

    #[test]
    fn streaming_fnv_matches_oneshot_and_chains() {
        let mut h = Fnv::new();
        h.write(b"ab").write(b"c");
        assert_eq!(h.finish(), fnv1a(b"abc"));
        // write_u64 folds the little-endian bytes.
        let mut a = Fnv::new();
        a.write_u64(0x0102_0304_0506_0708);
        assert_eq!(
            a.finish(),
            fnv1a(&[0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01])
        );
        // Chained stage hashes differ from unchained ones.
        let mut b = Fnv::new();
        b.write(b"stage").write_u64(1);
        let mut c = Fnv::new();
        c.write(b"stage").write_u64(2);
        assert_ne!(b.finish(), c.finish());
    }

    #[test]
    fn manifest_serializes_to_json_objects() {
        let mut metrics = MetricsSnapshot::default();
        metrics.counters.insert("gen.attacks".into(), 42);
        metrics.gauges.insert("pool.imbalance".into(), 1.25);
        metrics.histograms.insert(
            "span.run".into(),
            HistogramSnapshot {
                bounds: vec![10, 20],
                buckets: vec![1, 0, 0],
                count: 1,
                sum: 5,
            },
        );
        let m = RunManifest {
            schema: SCHEMA,
            version: "0.1.0".into(),
            describe: "v0.1.0-test".into(),
            run: RunInfo {
                scenario: "quick".into(),
                seed: 0xDD05_C0DE,
                workers: Some(4),
                config_hash: 7,
                stages: vec![("plan".into(), 11), ("attacks".into(), 22)],
                degraded_weeks: vec![("ucsd".into(), vec![3, 4, 5])],
            },
            metrics,
        };
        let json = m.to_json();
        assert!(json.contains("\"gen.attacks\": 42"));
        assert!(json.contains("\"workers\": 4"));
        assert!(json.contains("\"ucsd\""));
        let v: Value = serde_json::from_str(&json).unwrap();
        let counters = v.get("metrics").unwrap().get("counters").unwrap();
        assert_eq!(counters.get("gen.attacks"), Some(&Value::UInt(42)));
        let table = m.summary_table();
        assert!(table.contains("quick run"));
        assert!(table.contains("span.run"));
        assert!(table.contains("gen.attacks"));
        assert!(table.contains("degraded source"));

        // Round trip: from_json reconstructs every field exactly.
        let back = RunManifest::from_json(&json).expect("round trip parses");
        assert_eq!(back.schema, m.schema);
        assert_eq!(back.version, m.version);
        assert_eq!(back.run.scenario, m.run.scenario);
        assert_eq!(back.run.seed, m.run.seed);
        assert_eq!(back.run.workers, m.run.workers);
        assert_eq!(back.run.config_hash, m.run.config_hash);
        assert_eq!(back.run.stages, m.run.stages);
        assert_eq!(back.run.degraded_weeks, m.run.degraded_weeks);
        assert_eq!(back.metrics, m.metrics);
    }

    #[test]
    fn corrupt_manifests_error_instead_of_panicking() {
        for text in [
            "",
            "{",
            "not json at all",
            "{\"schema\": 1}",
            "{\"schema\": 999, \"version\": \"x\"}",
            "{\"schema\": 1, \"version\": 7, \"describe\": \"x\", \"run\": {}, \"metrics\": {}}",
        ] {
            assert!(
                RunManifest::from_json(text).is_err(),
                "must reject {text:?}"
            );
        }
    }
}
