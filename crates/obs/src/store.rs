//! Persistent run history: the `.ddoscovery/runs/` store.
//!
//! Every telemetry-enabled run appends its [`RunManifest`] as
//! `<config-fingerprint>-<seq>.json` (16 hex digits of the config
//! FNV-1a fingerprint, then a monotonically increasing store-wide
//! sequence number), so longitudinal comparison survives the process —
//! the paper's whole methodology is lining up two measurements and
//! quantifying the delta, and that starts with keeping the first one.
//!
//! [`RunStore`] is deliberately dumb storage: flat JSON files, no
//! index, no locking beyond the atomicity of a single `write`. Reads
//! are resilient by construction — a corrupt or truncated manifest
//! becomes an `Err` entry the caller skips with a warning, never a
//! panic (the same discipline as the fault-injection layer).
//!
//! [`diff`] compares two manifests the way DESIGN.md says they should
//! be compared: deterministic metrics (counters, gauges, stage
//! fingerprints) exactly — these gate CI via `--gate <pct>` — and
//! wall-clock histograms only as reported p50/p99 magnitudes, never
//! gated, because latency varies run to run on shared hardware.

use crate::manifest::{quantile, RunManifest};
use std::path::{Path, PathBuf};

/// Environment variable overriding the store directory (the CLI's
/// `--runs-dir` flag wins over it).
pub const RUNS_DIR_ENV: &str = "DDOSCOVERY_RUNS_DIR";

/// Default store location, relative to the working directory.
pub const DEFAULT_RUNS_DIR: &str = ".ddoscovery/runs";

/// A flat directory of stored run manifests.
#[derive(Debug, Clone)]
pub struct RunStore {
    dir: PathBuf,
}

/// One file in the store. `manifest` is `Err` for corrupt or truncated
/// entries — present so callers can warn and skip rather than die.
#[derive(Debug)]
pub struct StoreEntry {
    pub path: PathBuf,
    /// File stem, e.g. `91ab…f3-0007` — the name `runs show`/`diff`
    /// resolve.
    pub stem: String,
    /// Parsed sequence suffix; `u64::MAX` when the stem has none.
    pub seq: u64,
    pub manifest: Result<RunManifest, String>,
}

impl RunStore {
    pub fn new(dir: impl Into<PathBuf>) -> RunStore {
        RunStore { dir: dir.into() }
    }

    /// The store at `DDOSCOVERY_RUNS_DIR`, or `.ddoscovery/runs`.
    pub fn open_default() -> RunStore {
        match std::env::var(RUNS_DIR_ENV) {
            Ok(dir) if !dir.is_empty() => RunStore::new(dir),
            _ => RunStore::new(DEFAULT_RUNS_DIR),
        }
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Next store-wide sequence number: one past the highest on disk.
    /// Only conforming stems steer it — a stray `backup-99.json` in
    /// the directory is warned about and skipped, not treated as run
    /// ninety-nine.
    fn next_seq(&self) -> u64 {
        let mut max = 0u64;
        for stem in self.stems() {
            match parse_seq(&stem) {
                Some(seq) => max = max.max(seq),
                None => crate::warn!(
                    "run store: ignoring non-conforming entry {stem}.json in {}",
                    self.dir.display()
                ),
            }
        }
        max.saturating_add(1)
    }

    fn stems(&self) -> Vec<String> {
        let Ok(dir) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut stems: Vec<String> = dir
            .filter_map(|entry| {
                let path = entry.ok()?.path();
                if path.extension().and_then(|e| e.to_str()) != Some("json") {
                    return None;
                }
                Some(path.file_stem()?.to_str()?.to_string())
            })
            .collect();
        stems.sort();
        stems
    }

    /// Append `manifest` as `<config-fingerprint>-<seq>.json`,
    /// returning the written path.
    ///
    /// Claim-then-publish: the final name is claimed atomically with
    /// `create_new` (two processes scanning the same highest sequence
    /// race to *distinct* numbers instead of overwriting each other —
    /// the loser of the claim retries one higher), the full JSON is
    /// written to a temporary sibling, and a rename publishes it over
    /// the claim. A reader or a crash therefore never observes a torn
    /// manifest: the worst case is an empty claimed file, which lists
    /// as a corrupt `Err` entry rather than silently passing for data.
    pub fn append(&self, manifest: &RunManifest) -> Result<PathBuf, String> {
        std::fs::create_dir_all(&self.dir)
            .map_err(|e| format!("run store: create {}: {e}", self.dir.display()))?;
        let json = manifest.to_json();
        let base = self.next_seq();
        // Bounded claim loop: each attempt tries one sequence number
        // higher, so losing a race is `AlreadyExists` and retryable.
        // The budget (64) is far past any plausible number of sibling
        // processes scanning the same highest sequence concurrently;
        // exhausting it means something is recreating files pathologically
        // and deserves an error, not a spin.
        let (stem, path) = crate::retry::with_backoff(
            "run-store claim",
            64,
            |e| e.kind() == std::io::ErrorKind::AlreadyExists,
            |attempt| {
                let seq = base.saturating_add(u64::from(attempt));
                let stem = format!("{:016x}-{:04}", manifest.run.config_hash, seq);
                let path = self.dir.join(format!("{stem}.json"));
                std::fs::OpenOptions::new()
                    .write(true)
                    .create_new(true)
                    .open(&path)
                    .map(|_| (stem, path))
            },
        )
        .map_err(|e| format!("run store: claim in {}: {e}", self.dir.display()))?;
        let tmp = self.dir.join(format!(".{stem}.tmp.{}", std::process::id()));
        let publish = crate::retry::with_backoff("run-store write", 3, crate::retry::is_transient, |_| {
            std::fs::write(&tmp, &json)
        })
        .map_err(|e| format!("run store: write {}: {e}", tmp.display()))
        .and_then(|()| {
            crate::retry::with_backoff("run-store publish", 3, crate::retry::is_transient, |_| {
                std::fs::rename(&tmp, &path)
            })
            .map_err(|e| format!("run store: publish {}: {e}", path.display()))
        });
        if let Err(e) = publish {
            // Withdraw the empty claim and the orphaned temporary
            // so a failed append leaves no debris behind.
            let _ = std::fs::remove_file(&path);
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        Ok(path)
    }

    /// Every entry in the store, ordered by sequence number (ties and
    /// unnumbered stems sort by name). Corrupt files come back as
    /// `Err` manifests, not errors of the listing itself.
    pub fn entries(&self) -> Vec<StoreEntry> {
        let mut entries: Vec<StoreEntry> = self
            .stems()
            .into_iter()
            .map(|stem| {
                let path = self.dir.join(format!("{stem}.json"));
                let manifest = std::fs::read_to_string(&path)
                    .map_err(|e| format!("read {}: {e}", path.display()))
                    .and_then(|text| RunManifest::from_json(&text));
                StoreEntry {
                    seq: parse_seq(&stem).unwrap_or(u64::MAX),
                    path,
                    stem,
                    manifest,
                }
            })
            .collect();
        entries.sort_by(|a, b| a.seq.cmp(&b.seq).then_with(|| a.stem.cmp(&b.stem)));
        entries
    }

    /// Resolve `name` to a manifest: an existing file path is read
    /// directly; otherwise it must match a stored stem exactly or be
    /// an unambiguous prefix of one.
    pub fn load(&self, name: &str) -> Result<(String, RunManifest), String> {
        let as_path = Path::new(name);
        if as_path.is_file() {
            let text = std::fs::read_to_string(as_path)
                .map_err(|e| format!("read {name}: {e}"))?;
            return RunManifest::from_json(&text)
                .map(|m| (name.to_string(), m))
                .map_err(|e| format!("{name}: {e}"));
        }
        let stems = self.stems();
        let resolved = if stems.iter().any(|s| s == name) {
            name.to_string()
        } else {
            let matches: Vec<&String> = stems.iter().filter(|s| s.starts_with(name)).collect();
            match matches.as_slice() {
                [unique] => (*unique).clone(),
                [] => {
                    return Err(format!(
                        "no run `{name}` in {} ({} stored)",
                        self.dir.display(),
                        stems.len()
                    ))
                }
                many => {
                    return Err(format!(
                        "run `{name}` is ambiguous: {}",
                        many.iter()
                            .map(|s| s.as_str())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ))
                }
            }
        };
        let path = self.dir.join(format!("{resolved}.json"));
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        RunManifest::from_json(&text)
            .map(|m| (resolved.clone(), m))
            .map_err(|e| format!("{resolved}: {e}"))
    }
}

/// Parse the sequence number out of a conforming store stem:
/// exactly `<16 hex digits>-<decimal seq>`. Anything else — a stray
/// `backup-99`, a 15-digit hash, a non-numeric suffix — is `None`, so
/// foreign files in the store directory can never steer the sequence
/// or masquerade as runs.
fn parse_seq(stem: &str) -> Option<u64> {
    let (hash, seq) = stem.split_once('-')?;
    if hash.len() != 16 || !hash.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    if seq.is_empty() || !seq.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    seq.parse().ok()
}

// ---------------------------------------------------------------------
// Diffing
// ---------------------------------------------------------------------

/// What kind of value a [`MetricDelta`] compares. Only deterministic
/// kinds (counters and gauges) participate in `--gate`; histogram
/// quantiles are wall-clock and report-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaKind {
    Counter,
    Gauge,
    HistP50,
    HistP99,
}

impl DeltaKind {
    fn label(self) -> &'static str {
        match self {
            DeltaKind::Counter => "counter",
            DeltaKind::Gauge => "gauge",
            DeltaKind::HistP50 => "p50",
            DeltaKind::HistP99 => "p99",
        }
    }
}

/// One metric compared across two runs. A side is `None` when the
/// metric exists only in the other run.
#[derive(Debug, Clone)]
pub struct MetricDelta {
    pub kind: DeltaKind,
    pub name: String,
    pub a: Option<f64>,
    pub b: Option<f64>,
}

impl MetricDelta {
    /// Relative change `(b - a) / a`, when both sides are present and
    /// comparable. `a == 0, b != 0` reports `+inf`; NaN gauges (masked
    /// non-finite values) compare as unchanged when both are NaN.
    pub fn rel_change(&self) -> Option<f64> {
        let (a, b) = (self.a?, self.b?);
        if a.is_nan() && b.is_nan() {
            return Some(0.0);
        }
        if a == 0.0 {
            return Some(if b == 0.0 { 0.0 } else { f64::INFINITY });
        }
        Some((b - a) / a)
    }

    /// Did the value change at all (including appearing/disappearing)?
    pub fn changed(&self) -> bool {
        match (self.a, self.b) {
            (Some(a), Some(b)) => !(a == b || (a.is_nan() && b.is_nan())),
            (None, None) => false,
            _ => true,
        }
    }

    /// May this delta trip `--gate`? Deterministic kinds only, and
    /// only when the metric exists on both sides — a metric added or
    /// removed by a code change is reported, not gated.
    pub fn gateable(&self) -> bool {
        matches!(self.kind, DeltaKind::Counter | DeltaKind::Gauge)
            && self.a.is_some()
            && self.b.is_some()
    }
}

/// The full comparison of two runs.
#[derive(Debug)]
pub struct RunDiff {
    pub a_label: String,
    pub b_label: String,
    pub seed_changed: bool,
    pub config_changed: bool,
    /// Per-stage fingerprints: `(stage, a, b)`; `None` = stage absent.
    pub stages: Vec<(String, Option<u64>, Option<u64>)>,
    pub deltas: Vec<MetricDelta>,
}

/// Compare manifests `a` and `b` metric by metric.
pub fn diff(a_label: &str, a: &RunManifest, b_label: &str, b: &RunManifest) -> RunDiff {
    let mut deltas = Vec::new();
    let mut keys: Vec<&String> = a.metrics.counters.keys().chain(b.metrics.counters.keys()).collect();
    keys.sort();
    keys.dedup();
    for name in keys {
        deltas.push(MetricDelta {
            kind: DeltaKind::Counter,
            name: name.clone(),
            a: a.metrics.counters.get(name).map(|v| *v as f64),
            b: b.metrics.counters.get(name).map(|v| *v as f64),
        });
    }
    let mut keys: Vec<&String> = a.metrics.gauges.keys().chain(b.metrics.gauges.keys()).collect();
    keys.sort();
    keys.dedup();
    for name in keys {
        deltas.push(MetricDelta {
            kind: DeltaKind::Gauge,
            name: name.clone(),
            a: a.metrics.gauges.get(name).copied(),
            b: b.metrics.gauges.get(name).copied(),
        });
    }
    let mut keys: Vec<&String> = a
        .metrics
        .histograms
        .keys()
        .chain(b.metrics.histograms.keys())
        .collect();
    keys.sort();
    keys.dedup();
    for name in keys {
        for (kind, q) in [(DeltaKind::HistP50, 0.50), (DeltaKind::HistP99, 0.99)] {
            deltas.push(MetricDelta {
                kind,
                name: name.clone(),
                a: a.metrics
                    .histograms
                    .get(name)
                    .and_then(|h| quantile(h, q))
                    .map(|v| v as f64),
                b: b.metrics
                    .histograms
                    .get(name)
                    .and_then(|h| quantile(h, q))
                    .map(|v| v as f64),
            });
        }
    }
    let mut stage_names: Vec<&String> = a
        .run
        .stages
        .iter()
        .map(|(n, _)| n)
        .chain(b.run.stages.iter().map(|(n, _)| n))
        .collect();
    stage_names.sort();
    stage_names.dedup();
    let stages = stage_names
        .into_iter()
        .map(|name| {
            let find = |m: &RunManifest| {
                m.run
                    .stages
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, fp)| *fp)
            };
            (name.clone(), find(a), find(b))
        })
        .collect();
    RunDiff {
        a_label: a_label.to_string(),
        b_label: b_label.to_string(),
        seed_changed: a.run.seed != b.run.seed,
        config_changed: a.run.config_hash != b.run.config_hash,
        stages,
        deltas,
    }
}

impl RunDiff {
    /// Deltas whose absolute relative change exceeds `gate_pct`
    /// percent, among the gateable (deterministic) ones.
    pub fn breaches(&self, gate_pct: f64) -> Vec<&MetricDelta> {
        self.deltas
            .iter()
            .filter(|d| d.gateable())
            .filter(|d| {
                d.rel_change()
                    .is_some_and(|rel| rel.abs() * 100.0 > gate_pct)
            })
            .collect()
    }

    /// Human-readable report: header, changed stage fingerprints, then
    /// every changed metric with both values and the relative delta.
    /// Unchanged metrics are summarized as a single count.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== runs diff: {} -> {} ==\n", self.a_label, self.b_label));
        if self.seed_changed {
            out.push_str("!! seeds differ: deterministic metrics are expected to diverge\n");
        }
        if self.config_changed {
            out.push_str("!! config fingerprints differ: comparing different scenarios\n");
        }
        for (name, a, b) in &self.stages {
            let fmt = |v: &Option<u64>| match v {
                Some(fp) => format!("{fp:016x}"),
                None => "-".to_string(),
            };
            if a != b {
                out.push_str(&format!(
                    "stage {:<12} changed {} -> {}\n",
                    name,
                    fmt(a),
                    fmt(b)
                ));
            }
        }
        let changed: Vec<&MetricDelta> = self.deltas.iter().filter(|d| d.changed()).collect();
        let unchanged = self.deltas.len() - changed.len();
        if changed.is_empty() {
            out.push_str(&format!("no metric changes ({unchanged} metrics identical)\n"));
            return out;
        }
        out.push_str(&format!(
            "{:<8} {:<38} {:>14} {:>14} {:>10}\n",
            "kind", "metric", self.a_label_short(), self.b_label_short(), "delta"
        ));
        for d in changed {
            out.push_str(&format!(
                "{:<8} {:<38} {:>14} {:>14} {:>10}\n",
                d.kind.label(),
                d.name,
                fmt_opt(d.a),
                fmt_opt(d.b),
                match d.rel_change() {
                    Some(rel) if rel.is_finite() => format!("{:+.2}%", rel * 100.0),
                    Some(_) => "new".into(),
                    None => if d.a.is_none() { "added".into() } else { "removed".into() },
                },
            ));
        }
        out.push_str(&format!("({unchanged} metrics unchanged)\n"));
        out
    }

    fn a_label_short(&self) -> &str {
        short(&self.a_label)
    }

    fn b_label_short(&self) -> &str {
        short(&self.b_label)
    }
}

/// Last path-ish component of a label, truncated for table headers.
fn short(label: &str) -> &str {
    let tail = label.rsplit('/').next().unwrap_or(label);
    &tail[tail.len().saturating_sub(14)..]
}

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        None => "-".into(),
        Some(v) if v.is_nan() => "NaN".into(),
        Some(v) if v.fract() == 0.0 && v.abs() < 1e15 => format!("{}", v as i64),
        Some(v) => format!("{v:.3}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::{RunInfo, SCHEMA};
    use crate::metrics::MetricsSnapshot;

    fn manifest(seed: u64, counters: &[(&str, u64)], gauges: &[(&str, f64)]) -> RunManifest {
        let mut metrics = MetricsSnapshot::default();
        for (k, v) in counters {
            metrics.counters.insert(k.to_string(), *v);
        }
        for (k, v) in gauges {
            metrics.gauges.insert(k.to_string(), *v);
        }
        RunManifest {
            schema: SCHEMA,
            version: "0.1.0".into(),
            describe: "test".into(),
            run: RunInfo {
                scenario: "quick".into(),
                seed,
                workers: Some(2),
                config_hash: 0xABCD,
                stages: vec![("plan".into(), 1), ("attacks".into(), 2)],
                degraded_weeks: Vec::new(),
            },
            metrics,
        }
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ddoscovery-store-test-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_numbers_sequentially_and_lists_in_order() {
        let dir = scratch_dir("seq");
        let store = RunStore::new(&dir);
        assert!(store.entries().is_empty(), "missing dir lists as empty");
        let m = manifest(1, &[("x", 1)], &[]);
        let p1 = store.append(&m).expect("first append");
        let p2 = store.append(&m).expect("second append");
        assert!(p1.to_str().expect("utf8 path").ends_with("000000000000abcd-0001.json"));
        assert!(p2.to_str().expect("utf8 path").ends_with("000000000000abcd-0002.json"));
        let entries = store.entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].seq, 1);
        assert_eq!(entries[1].seq, 2);
        assert!(entries.iter().all(|e| e.manifest.is_ok()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_resolves_stems_prefixes_and_paths() {
        let dir = scratch_dir("load");
        let store = RunStore::new(&dir);
        let p = store.append(&manifest(7, &[("x", 1)], &[])).expect("append");
        let stem = p.file_stem().expect("stem").to_str().expect("utf8").to_string();
        // Exact stem, unique prefix, and raw path all resolve.
        assert_eq!(store.load(&stem).expect("by stem").1.run.seed, 7);
        assert_eq!(store.load(&stem[..6]).expect("by prefix").1.run.seed, 7);
        assert_eq!(
            store.load(p.to_str().expect("utf8")).expect("by path").1.run.seed,
            7
        );
        assert!(store.load("nope").is_err());
        // A second entry makes the shared prefix ambiguous.
        store.append(&manifest(8, &[], &[])).expect("append 2");
        let err = store.load(&stem[..6]).expect_err("ambiguous prefix");
        assert!(err.contains("ambiguous"), "got: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_surface_as_err_without_panicking() {
        let dir = scratch_dir("corrupt");
        let store = RunStore::new(&dir);
        store.append(&manifest(1, &[], &[])).expect("append");
        std::fs::write(dir.join("000000000000abcd-0002.json"), "{\"schema\": 1, trunc")
            .expect("write corrupt");
        let entries = store.entries();
        assert_eq!(entries.len(), 2);
        assert!(entries[0].manifest.is_ok());
        assert!(entries[1].manifest.is_err());
        assert!(store.load("000000000000abcd-0002").is_err());
        // Sequence numbering keeps advancing past the corrupt file.
        let p3 = store.append(&manifest(1, &[], &[])).expect("append 3");
        assert!(p3.to_str().expect("utf8").ends_with("-0003.json"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_seq_requires_the_full_stem_shape() {
        assert_eq!(parse_seq("000000000000abcd-0001"), Some(1));
        assert_eq!(parse_seq("ABCDEF0123456789-12"), Some(12));
        // Regression: any trailing `-<digits>` used to parse, so a
        // stray `backup-notes-99.json` steered the sequence to 100.
        assert_eq!(parse_seq("backup-notes-99"), None);
        assert_eq!(parse_seq("notes-123"), None);
        assert_eq!(parse_seq("000000000000abcd"), None);
        assert_eq!(parse_seq("000000000000abcd-"), None);
        assert_eq!(parse_seq("000000000000abcd-12a"), None);
        assert_eq!(parse_seq("00000000000abcd-1"), None);
        assert_eq!(parse_seq("000000000000abcdf-1"), None);
        assert_eq!(parse_seq("-5"), None);
        assert_eq!(parse_seq(""), None);
    }

    #[test]
    fn stray_files_do_not_steer_the_sequence() {
        let dir = scratch_dir("stray");
        let store = RunStore::new(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join("backup-99.json"), "{}").expect("stray file");
        let p = store.append(&manifest(1, &[], &[])).expect("append");
        assert!(
            p.to_str().expect("utf8").ends_with("-0001.json"),
            "sequence must start at 1, not past the stray file's 99: {p:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Two-process append race: each process scans the same highest
    /// sequence, but `create_new` claims make the loser retry one
    /// higher — every append lands under a distinct name and no
    /// manifest is overwritten or torn. (Regression for the bare
    /// `fs::write` + read-then-write sequence scan this store shipped
    /// with.)
    #[test]
    fn concurrent_appends_from_two_processes_get_distinct_names() {
        const DIR_VAR: &str = "DDOSCOVERY_STORE_RACE_DIR";
        const APPENDS_PER_PROCESS: usize = 8;
        // Helper branch: with the env var set, this test *is* a child
        // process — append and exit.
        if let Ok(dir) = std::env::var(DIR_VAR) {
            let store = RunStore::new(dir);
            for _ in 0..APPENDS_PER_PROCESS {
                store.append(&manifest(2, &[("child", 1)], &[])).expect("child append");
            }
            return;
        }
        let dir = scratch_dir("race");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let exe = std::env::current_exe().expect("test binary path");
        let mut children: Vec<std::process::Child> = (0..2)
            .map(|_| {
                std::process::Command::new(&exe)
                    .arg("store::tests::concurrent_appends_from_two_processes_get_distinct_names")
                    .arg("--exact")
                    .env(DIR_VAR, dir.as_os_str())
                    .stdout(std::process::Stdio::null())
                    .stderr(std::process::Stdio::null())
                    .spawn()
                    .expect("spawn child test process")
            })
            .collect();
        // The parent races its own appends against both children.
        let store = RunStore::new(&dir);
        for _ in 0..APPENDS_PER_PROCESS {
            store.append(&manifest(1, &[("parent", 1)], &[])).expect("parent append");
        }
        for child in &mut children {
            assert!(child.wait().expect("child exit").success(), "child process failed");
        }
        let entries = store.entries();
        let expected = 3 * APPENDS_PER_PROCESS;
        assert_eq!(entries.len(), expected, "every append must land in its own file");
        let mut seqs: Vec<u64> = entries.iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), expected, "no two appends may share a sequence number");
        for entry in &entries {
            assert!(
                entry.manifest.is_ok(),
                "{} must be a complete manifest, got {:?}",
                entry.stem,
                entry.manifest
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn diff_reports_relative_deltas_and_gates() {
        let a = manifest(
            1,
            &[("gen.attacks", 1000), ("only_a", 5)],
            &[("rss", 100.0)],
        );
        let mut b = manifest(
            1,
            &[("gen.attacks", 1100), ("only_b", 9)],
            &[("rss", 100.0)],
        );
        b.run.stages[1].1 = 99;
        let d = diff("a", &a, "b", &b);
        assert!(!d.seed_changed && !d.config_changed);
        // gen.attacks moved 10%; rss unchanged; only_a/only_b one-sided.
        let gen = d
            .deltas
            .iter()
            .find(|x| x.name == "gen.attacks")
            .expect("gen.attacks delta");
        assert!((gen.rel_change().expect("both sides") - 0.10).abs() < 1e-12);
        let breaches = d.breaches(5.0);
        assert_eq!(breaches.len(), 1, "only the 10% counter move breaches");
        assert_eq!(breaches[0].name, "gen.attacks");
        assert!(d.breaches(15.0).is_empty());
        // One-sided metrics are reported but never gate.
        let one_sided = d.deltas.iter().find(|x| x.name == "only_a").expect("only_a");
        assert!(one_sided.changed() && !one_sided.gateable());
        let report = d.render();
        assert!(report.contains("gen.attacks"));
        assert!(report.contains("+10.00%"));
        assert!(report.contains("stage attacks"), "changed stage fingerprint reported");
        assert!(!report.contains("stage plan"), "unchanged stage omitted");
    }
}
