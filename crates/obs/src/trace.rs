//! The flight recorder: per-thread bounded ring buffers of timestamped
//! trace events, exported as Chrome trace-event JSON (loadable in
//! Perfetto / `chrome://tracing`).
//!
//! Like everything in `obs`, tracing is a **pure side channel**: it is
//! off by default, recording never feeds back into simulation state,
//! and study output is byte-identical with tracing on or off (enforced
//! by `crates/core/tests/telemetry.rs`). The recorder is built for the
//! hot paths it instruments:
//!
//! * every thread records into its own lane (ring buffer) — no shared
//!   lock on the event path beyond the lane's own uncontended mutex;
//! * lanes are bounded: when a lane is full the **oldest** event is
//!   dropped and the global `trace.dropped` counter advances, so a
//!   pathological run degrades to a truncated timeline, never to
//!   unbounded memory;
//! * worker threads are short-lived (`ExecPool` spawns per call); a
//!   retiring thread hands its buffer to the global collector and
//!   returns its lane id to a free list, so the exported timeline shows
//!   one stable lane per *concurrent* worker instead of one per spawned
//!   thread.
//!
//! Event vocabulary (what the pipeline emits when tracing is armed):
//! span begin/end (`obs::span!` paths, with a counter snapshot attached
//! to every span end), `pool.shard` begin/end per executed shard,
//! `pool.reorder_wait` intervals when the ordered fold blocks on an
//! out-of-order shard, `cache.<stage>.{hit,miss,compute,evict}` stage
//! cache events, and `chaos.{caught,recovered}.<site>` retry markers.
//! Emission helpers live here; the Chrome JSON schema (`traceEvents`,
//! phase codes) never leaves this file — repo lint rule 6.

use crate::metrics;
use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Environment variable naming a trace output path (the CLI's
/// `--trace` flag wins over it).
pub const TRACE_ENV: &str = "DDOSCOVERY_TRACE";

/// Default per-lane ring capacity, in events.
pub const DEFAULT_LANE_CAPACITY: usize = 1 << 16;

/// Event phase, mirroring the Chrome trace-event phases we emit:
/// duration begin/end pairs and thread-scoped instants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    Begin,
    End,
    Instant,
}

impl Phase {
    fn code(self) -> &'static str {
        match self {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Instant => "i",
        }
    }
}

/// One recorded event. Names are `Cow` so the static-named hot paths
/// (pool shards) never allocate; args are `(name, value)` pairs that
/// land in the Chrome `args` object.
#[derive(Debug, Clone)]
pub struct Event {
    /// Nanoseconds since the trace epoch (armed at [`enable`]).
    pub ts_ns: u64,
    pub phase: Phase,
    pub name: Cow<'static, str>,
    pub args: Vec<(Cow<'static, str>, u64)>,
}

// ---------------------------------------------------------------------
// Global state
// ---------------------------------------------------------------------

/// Armed flag: all emission helpers are no-ops while this is false.
static ARMED: AtomicBool = AtomicBool::new(false);
/// Per-lane ring capacity (set by [`enable`]).
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_LANE_CAPACITY);
/// Events dropped by ring overflow, process-cumulative.
static DROPPED: AtomicU64 = AtomicU64::new(0);

struct Shared {
    /// Live lanes: `(lane id, buffer)` of threads currently recording.
    live: Vec<(u64, Arc<Mutex<VecDeque<Event>>>)>,
    /// Buffers of retired (exited) threads, in retirement order.
    retired: Vec<(u64, VecDeque<Event>)>,
    /// Lane ids returned by retired threads, reused LIFO so the export
    /// shows one lane per concurrent worker.
    free_lanes: Vec<u64>,
    next_lane: u64,
}

fn shared() -> &'static Mutex<Shared> {
    static SHARED: OnceLock<Mutex<Shared>> = OnceLock::new();
    SHARED.get_or_init(|| {
        Mutex::new(Shared {
            live: Vec::new(),
            retired: Vec::new(),
            free_lanes: Vec::new(),
            // Lane 0 is reserved for the thread that arms tracing
            // (usually the main thread), purely for readability.
            next_lane: 0,
        })
    })
}

fn lock_shared() -> std::sync::MutexGuard<'static, Shared> {
    shared().lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Pre-resolved `trace.dropped` registry counter (also registered at
/// [`enable`] time so manifests carry the zero).
fn dropped_counter() -> &'static Arc<metrics::Counter> {
    static C: OnceLock<Arc<metrics::Counter>> = OnceLock::new();
    C.get_or_init(|| metrics::counter("trace.dropped"))
}

/// Trace epoch: timestamps count from the first [`enable`] call.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the trace epoch.
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

/// Is the flight recorder armed?
#[inline]
pub fn enabled() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Arm the recorder with the given per-lane ring capacity (clamped to
/// ≥ 8). Registers the `trace.dropped` counter so every manifest
/// carries it, zeros included. Events recorded before `enable` are
/// kept — re-arming does not clear history; use [`clear`] for that.
pub fn enable(capacity_per_lane: usize) {
    CAPACITY.store(capacity_per_lane.max(8), Ordering::Relaxed);
    let _ = epoch();
    let _ = dropped_counter();
    ARMED.store(true, Ordering::Relaxed);
}

/// Disarm the recorder. Buffered events survive until [`clear`].
pub fn disable() {
    ARMED.store(false, Ordering::Relaxed);
}

/// Drop every buffered event (live lanes and retired buffers) and
/// reset the local dropped tally. Lane ids stay allocated.
pub fn clear() {
    let mut s = lock_shared();
    for (_, buf) in &s.live {
        buf.lock().unwrap_or_else(|poisoned| poisoned.into_inner()).clear();
    }
    s.retired.clear();
    DROPPED.store(0, Ordering::Relaxed);
}

/// Events dropped by ring overflow since the last [`clear`].
pub fn dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------
// Per-thread lanes
// ---------------------------------------------------------------------

/// Thread-local lane handle; retires the buffer on thread exit.
struct LaneHandle {
    lane: u64,
    buf: Arc<Mutex<VecDeque<Event>>>,
}

impl Drop for LaneHandle {
    fn drop(&mut self) {
        let events = std::mem::take(
            &mut *self.buf.lock().unwrap_or_else(|poisoned| poisoned.into_inner()),
        );
        let mut s = lock_shared();
        s.live.retain(|(lane, _)| *lane != self.lane);
        if !events.is_empty() {
            s.retired.push((self.lane, events));
        }
        s.free_lanes.push(self.lane);
    }
}

thread_local! {
    static LANE: RefCell<Option<LaneHandle>> = const { RefCell::new(None) };
}

/// Append one event to the current thread's lane, dropping the oldest
/// event (and counting it) when the ring is full.
fn push(event: Event) {
    LANE.with(|slot| {
        let mut slot = slot.borrow_mut();
        let handle = slot.get_or_insert_with(|| {
            let buf = Arc::new(Mutex::new(VecDeque::new()));
            let mut s = lock_shared();
            let lane = s.free_lanes.pop().unwrap_or_else(|| {
                let id = s.next_lane;
                s.next_lane += 1;
                id
            });
            s.live.push((lane, Arc::clone(&buf)));
            LaneHandle { lane, buf }
        });
        let cap = CAPACITY.load(Ordering::Relaxed);
        let mut buf = handle
            .buf
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if buf.len() >= cap {
            buf.pop_front();
            DROPPED.fetch_add(1, Ordering::Relaxed);
            dropped_counter().inc();
        }
        buf.push_back(event);
    });
}

// ---------------------------------------------------------------------
// Emission API
// ---------------------------------------------------------------------

/// Record a span/interval begin on this thread's lane.
pub fn begin(name: impl Into<Cow<'static, str>>) {
    if !enabled() {
        return;
    }
    push(Event { ts_ns: now_ns(), phase: Phase::Begin, name: name.into(), args: Vec::new() });
}

/// Record an interval end on this thread's lane.
pub fn end(name: impl Into<Cow<'static, str>>) {
    end_with_args(name, Vec::new());
}

/// Record an interval end carrying args (the span layer attaches a
/// counter snapshot to every span end through this).
pub fn end_with_args(
    name: impl Into<Cow<'static, str>>,
    args: Vec<(Cow<'static, str>, u64)>,
) {
    if !enabled() {
        return;
    }
    push(Event { ts_ns: now_ns(), phase: Phase::End, name: name.into(), args });
}

/// Record a thread-scoped instant event.
pub fn instant(name: impl Into<Cow<'static, str>>, args: &[(&'static str, u64)]) {
    if !enabled() {
        return;
    }
    push(Event {
        ts_ns: now_ns(),
        phase: Phase::Instant,
        name: name.into(),
        args: args.iter().map(|&(k, v)| (Cow::Borrowed(k), v)).collect(),
    });
}

/// A drop guard pairing a begin with its end — the way `ExecPool`
/// brackets shard execution and reorder waits. A guard created while
/// the recorder is disarmed is a complete no-op (and stays silent even
/// if tracing is armed mid-flight, so B/E pairs never split).
#[derive(Debug)]
pub struct Guard {
    name: Option<Cow<'static, str>>,
}

impl Guard {
    /// Open an interval named `name` with one optional argument.
    pub fn new(name: impl Into<Cow<'static, str>>, arg: Option<(&'static str, u64)>) -> Guard {
        if !enabled() {
            return Guard { name: None };
        }
        let name = name.into();
        push(Event {
            ts_ns: now_ns(),
            phase: Phase::Begin,
            name: name.clone(),
            args: arg.into_iter().map(|(k, v)| (Cow::Borrowed(k), v)).collect(),
        });
        Guard { name: Some(name) }
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        if let Some(name) = self.name.take() {
            push(Event { ts_ns: now_ns(), phase: Phase::End, name, args: Vec::new() });
        }
    }
}

// ---------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------

/// A stable snapshot of every lane's events: retired buffers first (in
/// retirement order), then the live lanes, concatenated per lane id in
/// chronological order.
pub fn snapshot() -> Vec<(u64, Vec<Event>)> {
    let s = lock_shared();
    let mut lanes: std::collections::BTreeMap<u64, Vec<Event>> = std::collections::BTreeMap::new();
    for (lane, events) in &s.retired {
        lanes.entry(*lane).or_default().extend(events.iter().cloned());
    }
    for (lane, buf) in &s.live {
        let buf = buf.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        lanes.entry(*lane).or_default().extend(buf.iter().cloned());
    }
    lanes.into_iter().collect()
}

/// The current thread's lane id, if it has recorded anything.
pub fn current_lane() -> Option<u64> {
    LANE.with(|slot| slot.borrow().as_ref().map(|h| h.lane))
}

/// Repair a lane's event stream after ring overflow: an `End` whose
/// `Begin` was dropped (or whose name does not match the innermost
/// open interval) is discarded, and intervals left open at the end of
/// the lane are closed at the lane's final timestamp — so the exported
/// stream always nests, even from a truncated ring.
fn sanitize_lane(events: Vec<Event>) -> Vec<Event> {
    let mut out: Vec<Event> = Vec::with_capacity(events.len());
    let mut open: Vec<Cow<'static, str>> = Vec::new();
    let mut last_ts = 0u64;
    for ev in events {
        last_ts = last_ts.max(ev.ts_ns);
        match ev.phase {
            Phase::Begin => {
                open.push(ev.name.clone());
                out.push(ev);
            }
            Phase::End => {
                if open.last() == Some(&ev.name) {
                    open.pop();
                    out.push(ev);
                }
                // Otherwise: orphaned by overflow — drop it.
            }
            Phase::Instant => out.push(ev),
        }
    }
    while let Some(name) = open.pop() {
        out.push(Event { ts_ns: last_ts, phase: Phase::End, name, args: Vec::new() });
    }
    out
}

fn event_value(lane: u64, ev: &Event) -> serde::Value {
    use serde::Value;
    let mut fields: Vec<(String, Value)> = vec![
        ("name".into(), Value::Str(ev.name.to_string())),
        ("ph".into(), Value::Str(ev.phase.code().to_string())),
        // Chrome trace timestamps are microseconds; keep nanosecond
        // resolution in the fraction.
        ("ts".into(), Value::Float(ev.ts_ns as f64 / 1_000.0)),
        ("pid".into(), Value::UInt(1)),
        ("tid".into(), Value::UInt(lane)),
    ];
    if ev.phase == Phase::Instant {
        fields.push(("s".into(), Value::Str("t".into())));
    }
    if !ev.args.is_empty() {
        fields.push((
            "args".into(),
            Value::Object(
                ev.args
                    .iter()
                    .map(|(k, v)| (k.to_string(), Value::UInt(*v)))
                    .collect(),
            ),
        ));
    }
    Value::Object(fields)
}

/// Serialize every lane as a Chrome trace-event JSON document
/// (`{"traceEvents": [...]}`), sanitized per lane so begin/end pairs
/// always match. `trace.dropped` rides along in `otherData`.
pub fn export_json() -> String {
    use serde::Value;
    let mut events: Vec<Value> = Vec::new();
    for (lane, lane_events) in snapshot() {
        for ev in sanitize_lane(lane_events) {
            events.push(event_value(lane, &ev));
        }
    }
    let doc = Value::Object(vec![
        ("traceEvents".into(), Value::Array(events)),
        ("displayTimeUnit".into(), Value::Str("ms".into())),
        (
            "otherData".into(),
            Value::Object(vec![("trace.dropped".into(), Value::UInt(dropped()))]),
        ),
    ]);
    serde_json::to_string_pretty(&doc).expect("trace serialization is infallible")
}

/// Write [`export_json`] to `path`.
pub fn export_to_file(path: &str) -> std::io::Result<()> {
    std::fs::write(path, export_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that poke the process-wide recorder.
    fn recorder_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Events of the current thread's lane only — other tests in this
    /// binary may be recording on their own lanes concurrently.
    fn my_lane_events() -> Vec<Event> {
        let lane = current_lane().expect("this thread has recorded");
        snapshot()
            .into_iter()
            .find(|(id, _)| *id == lane)
            .map(|(_, events)| events)
            .unwrap_or_default()
    }

    #[test]
    fn disabled_recorder_is_silent() {
        let _lock = recorder_lock();
        disable();
        clear();
        instant("trace_test.silent", &[]);
        let _g = Guard::new("trace_test.silent_guard", None);
        drop(_g);
        assert!(current_lane().is_none() || my_lane_events().is_empty());
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let _lock = recorder_lock();
        clear();
        enable(8);
        let metric_before = dropped_counter().get();
        for i in 0..20u64 {
            instant("trace_test.overflow", &[("i", i)]);
        }
        disable();
        let mine: Vec<Event> = my_lane_events()
            .into_iter()
            .filter(|e| e.name == "trace_test.overflow")
            .collect();
        assert_eq!(mine.len(), 8, "ring must hold exactly its capacity");
        // Oldest dropped: the survivors are the 12..20 tail, in order.
        let kept: Vec<u64> = mine.iter().map(|e| e.args[0].1).collect();
        assert_eq!(kept, (12..20).collect::<Vec<u64>>());
        assert!(dropped() >= 12);
        assert!(dropped_counter().get() >= metric_before + 12);
        clear();
        assert_eq!(dropped(), 0);
    }

    #[test]
    fn guards_nest_and_export_parses() {
        let _lock = recorder_lock();
        clear();
        enable(1024);
        {
            let _outer = Guard::new("trace_test.outer", Some(("shard", 3)));
            let _inner = Guard::new("trace_test.inner", None);
            instant("trace_test.mark", &[("k", 1)]);
        }
        disable();
        let json = export_json();
        let v: serde::Value = serde_json::from_str(&json).expect("trace JSON parses");
        let events = match v.get("traceEvents").expect("traceEvents present") {
            serde::Value::Array(items) => items,
            other => panic!("traceEvents not an array: {other:?}"),
        };
        assert!(!events.is_empty());
        // Per-tid begin/end matching over the whole export.
        let mut stacks: std::collections::HashMap<u64, Vec<String>> =
            std::collections::HashMap::new();
        for ev in events {
            let tid = match ev.get("tid") {
                Some(serde::Value::UInt(t)) => *t,
                other => panic!("tid missing: {other:?}"),
            };
            let name = match ev.get("name") {
                Some(serde::Value::Str(s)) => s.clone(),
                other => panic!("name missing: {other:?}"),
            };
            match ev.get("ph") {
                Some(serde::Value::Str(p)) if p == "B" => stacks.entry(tid).or_default().push(name),
                Some(serde::Value::Str(p)) if p == "E" => {
                    let top = stacks.entry(tid).or_default().pop();
                    assert_eq!(top, Some(name), "E without matching B on lane {tid}");
                }
                _ => {}
            }
        }
        for (tid, stack) in stacks {
            assert!(stack.is_empty(), "lane {tid} left open intervals {stack:?}");
        }
        clear();
    }

    #[test]
    fn sanitize_repairs_overflow_damage() {
        let ev = |ts, phase, name: &str| Event {
            ts_ns: ts,
            phase,
            name: Cow::Owned(name.to_string()),
            args: Vec::new(),
        };
        // An orphaned E (its B was dropped by the ring) plus an
        // unclosed B at the end.
        let lane = vec![
            ev(5, Phase::End, "dropped_parent"),
            ev(10, Phase::Begin, "kept"),
            ev(12, Phase::Instant, "mark"),
            ev(20, Phase::End, "kept"),
            ev(30, Phase::Begin, "unclosed"),
        ];
        let fixed = sanitize_lane(lane);
        let phases: Vec<(Phase, &str)> =
            fixed.iter().map(|e| (e.phase, e.name.as_ref())).collect();
        assert_eq!(
            phases,
            vec![
                (Phase::Begin, "kept"),
                (Phase::Instant, "mark"),
                (Phase::End, "kept"),
                (Phase::Begin, "unclosed"),
                (Phase::End, "unclosed"),
            ]
        );
        // The synthesized close lands at the lane's final timestamp.
        assert_eq!(fixed.last().map(|e| e.ts_ns), Some(30));
    }

    #[test]
    fn worker_threads_get_disjoint_reusable_lanes() {
        let _lock = recorder_lock();
        clear();
        enable(1024);
        instant("trace_test.main", &[]);
        let main_lane = current_lane().expect("main lane allocated");
        // Two concurrent workers must get two distinct lanes (neither
        // of them the caller's).
        let barrier = std::sync::Barrier::new(2);
        let lanes: Vec<u64> = std::thread::scope(|scope| {
            let spawn = |_| {
                let barrier = &barrier;
                scope.spawn(move || {
                    instant("trace_test.worker", &[]);
                    barrier.wait();
                    current_lane().expect("worker lane allocated")
                })
            };
            let a = spawn(0);
            let b = spawn(1);
            vec![a.join().expect("worker a"), b.join().expect("worker b")]
        });
        assert_ne!(lanes[0], lanes[1], "concurrent workers must not share a lane");
        assert!(!lanes.contains(&main_lane));
        // A later worker reuses a retired lane id instead of minting a
        // fresh one forever.
        let reused = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    instant("trace_test.reuse", &[]);
                    current_lane().expect("lane allocated")
                })
                .join()
                .expect("reuse worker")
        });
        assert!(lanes.contains(&reused), "retired lane ids must be reused");
        disable();
        clear();
    }
}
