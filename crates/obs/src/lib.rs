//! `obs` — the observability layer of the reproduction.
//!
//! Everything in this crate is a **pure side channel**: enabling,
//! disabling, or reconfiguring telemetry must never change a single
//! byte of study output. That invariant is what lets the layer stay on
//! in release builds and in every test — the pipeline's determinism
//! contract (DESIGN.md §4) is about *simulation* state, and nothing
//! here feeds back into it.
//!
//! Three pieces:
//!
//! * [`metrics`] — a registry of named counters, gauges, and
//!   fixed-bucket histograms behind relaxed atomics. Cheap enough for
//!   hot loops; snapshots are deterministically ordered.
//! * [`span`] — guard-style wall-clock timers ([`span!`]) that nest
//!   lexically per thread (`run.generate`, `run.observe`, …) and
//!   record per-stage latency histograms. This module is the one
//!   sanctioned home of `std::time::Instant` in the workspace: the
//!   repo lint bans wall-clock primitives in simulation code and
//!   allowlists `crates/obs` precisely so timing stays quarantined
//!   here.
//! * [`manifest`] — serializes the whole registry plus a run
//!   fingerprint (seed, workers, scenario, build version) to JSON, and
//!   renders a human-readable summary table for stderr.
//!
//! Plus [`log`], a tiny leveled stderr logger (`DDOSCOVERY_LOG`), so
//! library crates never print directly and stdout stays reserved for
//! machine-readable experiment output; [`trace`], the flight recorder
//! (per-thread bounded event rings exported as Chrome trace-event
//! JSON); [`store`], the persistent run-history store backing
//! `ddoscovery runs list|show|diff`; and [`retry`], bounded
//! retry-with-backoff for transient IO (EINTR, claim-by-create races)
//! at the filesystem and socket boundary.

pub mod log;
pub mod manifest;
pub mod metrics;
pub mod retry;
pub mod span;
pub mod store;
pub mod trace;

use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide telemetry switch. On by default: recording is cheap
/// (relaxed atomics) and the output invariant makes it safe. Disabling
/// skips wall-clock reads and histogram updates; counters keep
/// counting (they cost one relaxed add and several are folded into
/// library statistics).
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Is telemetry recording enabled?
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enable or disable telemetry recording. Study output is byte-for-byte
/// identical either way — enforced by `crates/core/tests/telemetry.rs`.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// A wall-clock stopwatch that degrades to a no-op when telemetry is
/// disabled. The only way simulation crates may measure elapsed time.
#[derive(Debug)]
pub struct Stopwatch(Option<std::time::Instant>);

impl Stopwatch {
    /// Start timing now (or never, if telemetry is off).
    pub fn start() -> Stopwatch {
        Stopwatch(enabled().then(std::time::Instant::now))
    }

    /// Nanoseconds since [`Stopwatch::start`]; 0 when disabled.
    pub fn elapsed_ns(&self) -> u64 {
        self.0
            .map(|t| t.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64)
            .unwrap_or(0)
    }
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` where the procfs field is
/// unavailable (non-Linux platforms, restricted mounts). Like the rest
/// of this crate it is a pure side channel: a monotone high-water mark
/// the pipeline records as the `run.peak_rss` gauge after each stage.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        parse_vm_hwm(&status)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Extract `VmHWM` (reported in kB) from a `/proc/self/status` body.
#[cfg_attr(not(target_os = "linux"), allow(dead_code))]
fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()?;
    Some(kb * 1024)
}

#[cfg(test)]
mod rss_tests {
    #[test]
    fn parses_vm_hwm_lines() {
        let body = "Name:\tx\nVmPeak:\t  999 kB\nVmHWM:\t  123456 kB\nVmRSS:\t  88 kB\n";
        assert_eq!(super::parse_vm_hwm(body), Some(123_456 * 1024));
        assert_eq!(super::parse_vm_hwm("Name:\tx\n"), None);
        assert_eq!(super::parse_vm_hwm("VmHWM:\tjunk kB\n"), None);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn reads_a_positive_peak_on_linux() {
        let peak = super::peak_rss_bytes().expect("procfs VmHWM available on Linux");
        assert!(peak > 0);
    }
}
