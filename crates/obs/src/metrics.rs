//! The metrics registry: named counters, gauges, and fixed-bucket
//! histograms behind relaxed atomics.
//!
//! Handles are `Arc`s handed out by a [`Registry`]; the same name
//! always resolves to the same instrument, so concurrent increments
//! from pool workers land on one atomic and sum exactly. Hot paths
//! fetch a handle once (outside the loop) and pay one relaxed atomic
//! op per event afterwards. Snapshots iterate a `BTreeMap`, so the
//! serialized registry is deterministically ordered regardless of
//! registration order races.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins floating-point gauge (stored as `f64` bits).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub fn new() -> Gauge {
        Gauge(AtomicU64::new(0f64.to_bits()))
    }

    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.set(0.0);
    }
}

/// A fixed-bucket histogram over `u64` samples (nanoseconds, counts…).
///
/// Bucket `i` holds samples `v` with `bounds[i-1] < v <= bounds[i]`
/// (bucket 0: `v <= bounds[0]`); one extra overflow bucket catches
/// everything above the top bound. Placement is a pure function of the
/// value and the bounds — exact-edge samples always land in the bucket
/// whose upper bound they equal, which the bucket-boundary tests pin
/// down.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    pub fn new(bounds: &[u64]) -> Histogram {
        let mut b = bounds.to_vec();
        b.sort_unstable();
        b.dedup();
        let buckets = (0..=b.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds: b,
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Upper bucket bounds (exclusive of the overflow bucket).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket sample counts, overflow bucket last.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Upper bound of the bucket where the cumulative count first
    /// reaches `q · count` — a coarse quantile for summary tables.
    /// `u64::MAX` marks the overflow bucket; `None` if empty.
    pub fn approx_quantile(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= target {
                return Some(self.bounds.get(i).copied().unwrap_or(u64::MAX));
            }
        }
        Some(u64::MAX)
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// Latency buckets in nanoseconds: 1µs … 2min, roughly 1-2-5 spaced.
pub const LATENCY_NS: [u64; 14] = [
    1_000,
    10_000,
    100_000,
    500_000,
    1_000_000,
    5_000_000,
    25_000_000,
    100_000_000,
    500_000_000,
    1_000_000_000,
    5_000_000_000,
    15_000_000_000,
    60_000_000_000,
    120_000_000_000,
];

/// Count buckets for per-unit event tallies (attacks per week, shard
/// sizes): 0, then roughly 1-2-5 spaced up to 100k.
pub const COUNTS: [u64; 14] = [
    0, 1, 2, 5, 10, 25, 50, 100, 250, 1_000, 5_000, 10_000, 50_000, 100_000,
];

/// Read-only copy of one histogram, for manifests.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub bounds: Vec<u64>,
    /// Per-bucket counts; one longer than `bounds` (overflow last).
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: u64,
}

/// Read-only copy of a whole registry, deterministically ordered.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

#[derive(Default)]
struct Instruments {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// A registry of named instruments. The process-wide default is
/// [`global`]; tests that assert exact counts build their own with
/// [`Registry::new`] so parallel test threads cannot interfere.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Instruments>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Acquire the instrument table. A poisoned mutex (a panic while a
    /// holder had the lock) is recovered rather than propagated —
    /// telemetry is a side channel and must never take the study down
    /// with it; the atomics inside each instrument stay consistent.
    fn lock(&self) -> std::sync::MutexGuard<'_, Instruments> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.lock();
        Arc::clone(
            inner
                .counters
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.lock();
        Arc::clone(
            inner
                .gauges
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// The histogram named `name`, created with `bounds` on first use.
    /// Later callers get the existing instrument; bounds are fixed at
    /// creation.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        let mut inner = self.lock();
        Arc::clone(
            inner
                .histograms
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// A deterministic copy of every instrument's current value.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        HistogramSnapshot {
                            bounds: v.bounds().to_vec(),
                            buckets: v.bucket_counts(),
                            count: v.count(),
                            sum: v.sum(),
                        },
                    )
                })
                .collect(),
        }
    }

    /// Current counter values only, deterministically ordered — a
    /// lighter read than [`Registry::snapshot`] for callers that don't
    /// need gauges or histogram buckets (the flight recorder attaches
    /// this to span-end trace events).
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        let inner = self.lock();
        inner
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Zero every instrument (names and bounds survive). Used by the
    /// CLI between runs so one manifest describes one run.
    pub fn reset(&self) {
        let inner = self.lock();
        inner.counters.values().for_each(|c| c.reset());
        inner.gauges.values().for_each(|g| g.reset());
        inner.histograms.values().for_each(|h| h.reset());
    }
}

/// The process-wide default registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Shorthand: a counter in the [`global`] registry.
pub fn counter(name: &str) -> Arc<Counter> {
    global().counter(name)
}

/// Shorthand: a gauge in the [`global`] registry.
pub fn gauge(name: &str) -> Arc<Gauge> {
    global().gauge(name)
}

/// Shorthand: a histogram in the [`global`] registry.
pub fn histogram(name: &str, bounds: &[u64]) -> Arc<Histogram> {
    global().histogram(name, bounds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_deterministic() {
        let h = Histogram::new(&[10, 20, 30]);
        // Zero and everything at-or-below the first bound → bucket 0.
        h.record(0);
        h.record(10);
        // Exactly one past an edge → next bucket.
        h.record(11);
        h.record(20);
        // Top bound lands inside, one past it overflows.
        h.record(30);
        h.record(31);
        h.record(u64::MAX);
        assert_eq!(h.bucket_counts(), vec![2, 2, 1, 2]);
        assert_eq!(h.count(), 7);
        // `fetch_add` wraps on overflow; the u64::MAX sample wraps the sum.
        assert_eq!(h.sum(), 102u64.wrapping_add(u64::MAX));
    }

    #[test]
    fn bounds_are_sorted_and_deduped() {
        let h = Histogram::new(&[30, 10, 20, 10]);
        assert_eq!(h.bounds(), &[10, 20, 30]);
        assert_eq!(h.bucket_counts().len(), 4);
    }

    #[test]
    fn approx_quantile_walks_buckets() {
        let h = Histogram::new(&[10, 100]);
        assert_eq!(h.approx_quantile(0.5), None);
        for _ in 0..9 {
            h.record(5);
        }
        h.record(1_000);
        assert_eq!(h.approx_quantile(0.5), Some(10));
        assert_eq!(h.approx_quantile(1.0), Some(u64::MAX));
    }

    #[test]
    fn concurrent_counter_increments_sum_exactly() {
        let reg = Registry::new();
        let c = reg.counter("test.concurrent");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
        // Same name resolves to the same instrument.
        assert_eq!(reg.counter("test.concurrent").get(), 80_000);
    }

    #[test]
    fn snapshot_is_ordered_and_reset_zeroes() {
        let reg = Registry::new();
        reg.counter("b").add(2);
        reg.counter("a").add(1);
        reg.gauge("g").set(1.5);
        reg.histogram("h", &[1, 2]).record(2);
        let snap = reg.snapshot();
        let names: Vec<&String> = snap.counters.keys().collect();
        assert_eq!(names, ["a", "b"]);
        assert_eq!(snap.gauges["g"], 1.5);
        assert_eq!(snap.histograms["h"].buckets, vec![0, 1, 0]);
        reg.reset();
        let snap = reg.snapshot();
        assert_eq!(snap.counters["a"], 0);
        assert_eq!(snap.histograms["h"].count, 0);
        // Instruments survive a reset.
        assert_eq!(snap.counters.len(), 2);
    }
}
