#!/bin/sh
# Repo lint: forbid wall-clock and OS-entropy primitives in simulation
# code. The reproducibility contract (DESIGN.md §4) requires every
# stochastic draw to fork from the study seed and every timestamp to be
# SimTime — `thread_rng` or `SystemTime` anywhere in a crate breaks
# bitwise determinism across runs and worker counts.
#
# Test code is held to the same bar: the crates' #[cfg(test)] modules
# live inside crates/, and the workspace-level tests/ directory is
# scanned too. Only vendor/ (third-party stand-ins) is exempt.
set -eu
cd "$(dirname "$0")/.."

pattern='thread_rng|SystemTime'
if grep -rnE "$pattern" crates src examples tests --include='*.rs' 2>/dev/null; then
    echo "lint: forbidden nondeterminism primitive (pattern: $pattern)" >&2
    exit 1
fi
echo "lint: ok (no thread_rng / SystemTime in simulation code)"
