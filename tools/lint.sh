#!/bin/sh
# Repo lint, eight rules (mirrored by tests/repo_lint.rs):
#
# 1. No wall-clock or OS-entropy primitives in simulation code. The
#    reproducibility contract (DESIGN.md §4) requires every stochastic
#    draw to fork from the study seed and every timestamp to be
#    SimTime — `thread_rng` or `SystemTime` anywhere in a crate breaks
#    bitwise determinism across runs and worker counts.
#
# 2. Wall-clock timing (`Instant`) is quarantined in `crates/obs`, the
#    telemetry layer (DESIGN.md §5), and `crates/serve`, the IO
#    boundary (DESIGN.md §12) whose socket deadlines and drain budget
#    are wall-clock by nature and never feed simulation state:
#    simulation crates measure elapsed time only through
#    `obs::Stopwatch` / `obs::span!`, which are documented pure side
#    channels. The CLI binary and examples are user-facing and exempt.
#
# 3. Library crates never print: stdout is reserved for
#    machine-readable experiment output and stderr goes through the
#    leveled `obs` logger. Allowlist: the CLI binary
#    (crates/core/src/bin/), examples/, and the logger implementation
#    itself (crates/obs/src/log.rs). Tests and benches are not
#    libraries and may print.
#
# 4. Library code never calls bare `.unwrap()` (DESIGN.md §6): failure
#    paths either return the typed `ddoscovery::Error`, degrade to
#    `None`/NaN, or — when an invariant genuinely cannot fail — use
#    `.expect("why this holds")` so the justification is in the source.
#    This covers the `partial_cmp(..).unwrap()` NaN-panic family too.
#    Scope: lines before the first `#[cfg(test)]` of each file under a
#    src/ directory; test modules, tests/, benches, and examples are
#    not library code and may unwrap freely.
#
# 5. `catch_unwind` lives only in `crates/simcore/src/recover.rs`, the
#    designated recovery module (DESIGN.md §8). Scattered unwind
#    boundaries hide bugs and break the deterministic-failure contract:
#    every caught panic must flow through `recover::capture` so retry
#    budgets and `fault.*` counters stay consistent.
# 6. Chrome trace-event emission (`traceEvents`) lives only in
#    `crates/obs/src/trace.rs`, the flight recorder (DESIGN.md §10).
#    A second emitter would fork the event schema and silently break
#    the side-channel invariant tests that validate the one exporter.
#    Consumers (tests, examples like trace_check) may parse the format;
#    library code outside the recorder may not produce it.
# 7. Stage-cell IO (`CELL_MAGIC`, the `.ddoscovery/store` default) lives
#    only in `crates/core/src/diskstore.rs`, the persistent stage store
#    (DESIGN.md §11). One module owns the cell format and its
#    checksummed header; a second reader/writer would fork the wire
#    layout and dodge the integrity counters. The CLI binary may name
#    the default directory in its usage text; tests and benches may
#    poke cells to corrupt them.
# 8. Socket IO (`TcpListener`/`TcpStream`) lives only in
#    `crates/serve/src`, the query-service boundary (DESIGN.md §12).
#    One crate owns accept loops, deadlines, and shedding; sockets
#    anywhere else would dodge the admission control and the `http.*`
#    counters. Tests and benches may open client sockets freely.
#
# Only vendor/ (third-party stand-ins) is fully exempt.
set -eu
cd "$(dirname "$0")/.."

fail=0

pattern='thread_rng|SystemTime'
if grep -rnE "$pattern" crates src examples tests --include='*.rs' 2>/dev/null; then
    echo "lint: forbidden nondeterminism primitive (pattern: $pattern)" >&2
    fail=1
fi

if grep -rnE 'Instant' crates src tests --include='*.rs' 2>/dev/null \
    | grep -vE '^crates/obs/' \
    | grep -vE '^crates/serve/' \
    | grep -vE '^crates/core/src/bin/' \
    | grep . ; then
    echo "lint: wall-clock timing outside crates/obs (use obs::Stopwatch / obs::span!)" >&2
    fail=1
fi

if grep -rnE 'e?println!' crates src --include='*.rs' 2>/dev/null \
    | grep -E '(^|/)src/' \
    | grep -vE '^crates/core/src/bin/' \
    | grep -vE '^crates/obs/src/log\.rs:' \
    | grep . ; then
    echo "lint: raw print in library code (route stderr through obs::info!/warn!/...)" >&2
    fail=1
fi

unwrap_hits=$(
    find crates/*/src src -name '*.rs' 2>/dev/null | while IFS= read -r f; do
        awk '/#\[cfg\(test\)\]/{exit} /\.unwrap\(\)/{print FILENAME":"FNR": "$0}' "$f"
    done
)
if [ -n "$unwrap_hits" ]; then
    printf '%s\n' "$unwrap_hits"
    echo "lint: bare .unwrap() in library code (return ddoscovery::Error, degrade to None/NaN, or .expect(\"why\"))" >&2
    fail=1
fi

if grep -rnE 'catch_unwind' crates src examples tests --include='*.rs' 2>/dev/null \
    | grep -vE '^crates/simcore/src/recover\.rs:' \
    | grep . ; then
    echo "lint: catch_unwind outside crates/simcore/src/recover.rs (route panics through recover::capture)" >&2
    fail=1
fi

if grep -rnE 'traceEvents' crates src --include='*.rs' 2>/dev/null \
    | grep -E '(^|/)src/' \
    | grep -vE '^crates/obs/src/trace\.rs:' \
    | grep . ; then
    echo "lint: trace-event emission outside crates/obs/src/trace.rs (one exporter only)" >&2
    fail=1
fi

if grep -rnE 'CELL_MAGIC|\.ddoscovery/store' crates src --include='*.rs' 2>/dev/null \
    | grep -E '(^|/)src/' \
    | grep -vE '^crates/core/src/diskstore\.rs:' \
    | grep -vE '^crates/core/src/bin/' \
    | grep . ; then
    echo "lint: stage-cell IO outside crates/core/src/diskstore.rs (one store module only)" >&2
    fail=1
fi

if grep -rnE 'TcpListener|TcpStream' crates src --include='*.rs' 2>/dev/null \
    | grep -E '(^|/)src/' \
    | grep -vE '^crates/serve/src/' \
    | grep . ; then
    echo "lint: socket IO outside crates/serve (the query-service boundary owns sockets)" >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "lint: ok (determinism primitives, wall-clock confinement, print discipline, no bare unwrap, unwind confinement, trace-export confinement, stage-store confinement, socket confinement)"
